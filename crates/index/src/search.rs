//! The SpeakQL Search Engine (paper §3.4, Box 2, App. D).
//!
//! Given `MaskOut`, find the `k` closest ground-truth structures under the
//! weighted LCS edit distance. The search walks the per-length tries with an
//! incremental DP column per node, prunes branches whose column minimum
//! already exceeds the current best, and — with **BDB** — skips whole tries
//! using Proposition 1's bidirectional bounds. The two accuracy–latency
//! tradeoffs, **DAP** (diversity-aware pruning) and **INV** (inverted
//! keyword index), are opt-in, exactly as in the paper.

use crate::content::WordFold;
use crate::store::StructStore;
use crate::trie::{Trie, NONE};
use parking_lot::Mutex;
use speakql_editdist::{
    lower_bound, weighted_lcs_distance, weighted_lcs_distance_bounded, ColumnWorkspace, Dist,
    SoaWorkspace, Weights, DIST_INF, SOA_LANES,
};
use speakql_grammar::{
    generate_structures, GeneratorConfig, Keyword, StructTok, StructTokId, Structure,
};
use speakql_observe::{CounterId, Recorder, SpanId};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Upper bound on idle [`ColumnWorkspace`]s kept in an index's pool. Steady
/// state needs one workspace per concurrently searching worker; anything
/// beyond this cap is dropped on check-in rather than hoarded.
const WORKSPACE_POOL_CAP: usize = 64;

/// Target structures per trie shard. Each per-length trie is split into
/// `ceil(n / SHARD_TARGET)` shards (capped at [`MAX_SHARDS_PER_LEN`]) over
/// contiguous arena-id blocks, so one dominant length no longer serializes
/// `search_parallel`: the shards are independent work units sharing the
/// atomic branch-and-bound threshold. Sharding is deterministic from the
/// structure sequence alone, so a persisted index round-trips to the
/// byte-identical shard layout.
const SHARD_TARGET: usize = 8192;

/// Upper bound on shards per length; caps the prefix-duplication cost of
/// splitting (each shard re-roots its own copy of shared prefixes).
const MAX_SHARDS_PER_LEN: usize = 64;

/// Number of shards the `n` structures of one length are split into.
pub(crate) fn shard_count(n: usize) -> usize {
    n.div_ceil(SHARD_TARGET).clamp(1, MAX_SHARDS_PER_LEN)
}

/// The DP column buffers one search worker walks a trie with: either the
/// scalar reference [`ColumnWorkspace`] or the branchless SoA
/// [`SoaWorkspace`]. The variant is chosen once per search (see
/// [`StructureIndex::choose_kernel`]); both kernels produce byte-identical
/// hits and counters, so the choice is pure mechanism.
enum DpCols {
    Scalar(ColumnWorkspace),
    Soa(SoaWorkspace),
}

impl DpCols {
    /// Drain the DP-cell counter of whichever kernel ran.
    fn take_cells(&mut self) -> u64 {
        match self {
            DpCols::Scalar(ws) => ws.take_cells(),
            DpCols::Soa(ws) => ws.take_cells(),
        }
    }
}

/// A pool of reusable DP workspaces ([`ColumnWorkspace`] and
/// [`SoaWorkspace`], pooled separately) shared by every search against one
/// index. Column buffers are the only per-search allocation on the trie
/// walk, so recycling them across queries (and across the jobs of one batch)
/// removes the allocator from the steady-state hot path. Check-outs reset
/// the workspace for the new query; check-ins above [`WORKSPACE_POOL_CAP`]
/// (per kernel) drop the workspace instead.
struct WorkspacePool {
    scalar: Mutex<Vec<ColumnWorkspace>>,
    soa: Mutex<Vec<SoaWorkspace>>,
}

impl WorkspacePool {
    fn new() -> WorkspacePool {
        WorkspacePool {
            scalar: Mutex::new(Vec::new()),
            soa: Mutex::new(Vec::new()),
        }
    }

    /// A workspace of the requested kernel targeted at `masked`, recycled
    /// from the pool when one is available (counted in
    /// [`SearchStats::workspaces_reused`]). `soa` must only be requested
    /// after [`SoaWorkspace::fits`] passed for this query.
    fn checkout(
        &self,
        soa: bool,
        masked: &[StructTokId],
        w: Weights,
        max_depth: usize,
        stats: &mut SearchStats,
    ) -> DpCols {
        if soa {
            if let Some(mut ws) = self.soa.lock().pop() {
                if ws.reset(masked, w, max_depth) {
                    stats.workspaces_reused += 1;
                    return DpCols::Soa(ws);
                }
            }
            if let Some(ws) = SoaWorkspace::new(masked, w, max_depth) {
                return DpCols::Soa(ws);
            }
            // Unreachable when the caller honored the `fits` contract; fall
            // through to the scalar kernel rather than panic.
        }
        match self.scalar.lock().pop() {
            Some(mut ws) => {
                ws.reset(masked, w, max_depth);
                stats.workspaces_reused += 1;
                DpCols::Scalar(ws)
            }
            None => DpCols::Scalar(ColumnWorkspace::new(masked, w, max_depth)),
        }
    }

    /// Return a workspace for later reuse.
    fn checkin(&self, ws: DpCols) {
        match ws {
            DpCols::Scalar(ws) => {
                let mut free = self.scalar.lock();
                if free.len() < WORKSPACE_POOL_CAP {
                    free.push(ws);
                }
            }
            DpCols::Soa(ws) => {
                let mut free = self.soa.lock();
                if free.len() < WORKSPACE_POOL_CAP {
                    free.push(ws);
                }
            }
        }
    }
}

impl std::fmt::Debug for WorkspacePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkspacePool")
            .field("idle_scalar", &self.scalar.lock().len())
            .field("idle_soa", &self.soa.lock().len())
            .finish()
    }
}

impl Clone for WorkspacePool {
    /// Cloned indexes start with an empty pool; workspaces are cheap to
    /// rebuild and tied to no particular query.
    fn clone(&self) -> WorkspacePool {
        WorkspacePool::new()
    }
}

/// A search hit: a structure id in the index arena and its distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchHit {
    pub structure: u32,
    pub distance: Dist,
}

/// Which DP kernel the trie walk runs. Both kernels compute the identical
/// weighted-LCS recurrence cell for cell — same hits, same counters — so
/// this knob trades nothing but mechanism: the SoA kernel batches sibling
/// columns into branchless u16 lanes the compiler auto-vectorizes, the
/// scalar kernel is the one-column-at-a-time reference implementation the
/// parity suite certifies it against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum DpKernel {
    /// Use the SoA kernel whenever the query is eligible (weights lower to
    /// u16 and the Proposition 1 ceiling fits a lane), the scalar kernel
    /// otherwise. The default.
    #[default]
    Auto,
    /// Always use the scalar reference kernel.
    Scalar,
    /// Prefer the SoA kernel; identical to [`DpKernel::Auto`] today, but
    /// spelled explicitly for benchmarks and parity tests.
    Soa,
}

/// Search configuration. Defaults mirror the paper's "SpeakQL Default":
/// bidirectional bounds on, approximations off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchConfig {
    /// How many closest structures to return (the paper reports top-1 and
    /// "best of" top-5 results).
    pub k: usize,
    /// Bidirectional Bounds trie skipping (accuracy-preserving).
    pub bdb: bool,
    /// Diversity-Aware Pruning over the prime superset (approximate).
    pub dap: bool,
    /// Inverted keyword index (approximate).
    pub inv: bool,
    /// Worker threads for the trie walk. `1` (the default) is the fully
    /// sequential paper algorithm; `0` means one worker per available core.
    /// Parallel search partitions the per-length tries across workers and
    /// shares the branch-and-bound threshold through an atomic, so results
    /// are byte-identical to the sequential path at any thread count.
    pub threads: usize,
    /// DP kernel selection. Like `threads`, this never changes outputs —
    /// only how fast the columns are computed.
    pub kernel: DpKernel,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            k: 1,
            bdb: true,
            dap: false,
            inv: false,
            threads: 1,
            kernel: DpKernel::Auto,
        }
    }
}

impl SearchConfig {
    /// Default configuration returning the k closest structures.
    pub fn top_k(k: usize) -> SearchConfig {
        SearchConfig {
            k,
            ..SearchConfig::default()
        }
    }

    /// This configuration with `threads` search workers.
    pub fn with_threads(self, threads: usize) -> SearchConfig {
        SearchConfig { threads, ..self }
    }

    /// This configuration with an explicit DP kernel.
    pub fn with_kernel(self, kernel: DpKernel) -> SearchConfig {
        SearchConfig { kernel, ..self }
    }

    /// The worker count this configuration resolves to (`0` = all cores).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }
}

/// Counters describing the work one search performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Trie nodes whose DP column was computed.
    pub nodes_visited: u64,
    /// Tries actually walked.
    pub tries_searched: u32,
    /// Tries skipped by the bidirectional bounds.
    pub tries_pruned: u32,
    /// Structures compared exhaustively (INV path).
    pub structures_scanned: u64,
    /// Weighted-LCS DP cells evaluated by the trie-walk workspaces.
    pub cells_evaluated: u64,
    /// DP workspaces recycled from the index pool instead of allocated.
    pub workspaces_reused: u64,
    /// Trie shards actually walked. A length split into `s` shards can
    /// contribute up to `s` here but at most 1 to `tries_searched`.
    pub shards_searched: u32,
    /// Trie shards skipped by the bidirectional bounds.
    pub shards_pruned: u32,
}

impl SearchStats {
    /// Publish this search's work counters into a [`Recorder`].
    fn record_into(&self, recorder: &Recorder) {
        if !recorder.is_enabled() {
            return;
        }
        recorder.add(CounterId::SearchNodesVisited, self.nodes_visited);
        recorder.add(CounterId::SearchTriesSearched, self.tries_searched as u64);
        recorder.add(CounterId::SearchTriesPruned, self.tries_pruned as u64);
        recorder.add(CounterId::SearchStructuresScanned, self.structures_scanned);
        recorder.add(CounterId::EditDistCells, self.cells_evaluated);
        recorder.add(CounterId::SearchWorkspacesReused, self.workspaces_reused);
        recorder.add(CounterId::SearchShardsSearched, self.shards_searched as u64);
        recorder.add(CounterId::SearchShardsPruned, self.shards_pruned as u64);
    }
}

/// Bounded top-k accumulator ordered by `(distance, structure id)` — the
/// deterministic tie-break that makes trie search and brute-force scan
/// return identical results.
#[derive(Debug, Clone)]
struct TopK {
    k: usize,
    hits: Vec<SearchHit>,
}

impl TopK {
    fn new(k: usize) -> TopK {
        TopK {
            k: k.max(1),
            hits: Vec::with_capacity(k.max(1) + 1),
        }
    }

    fn key(h: &SearchHit) -> (Dist, u32) {
        (h.distance, h.structure)
    }

    fn offer(&mut self, hit: SearchHit) {
        let pos = self
            .hits
            .partition_point(|h| Self::key(h) < Self::key(&hit));
        if pos < self.k {
            self.hits.insert(pos, hit);
            self.hits.truncate(self.k);
        }
    }

    /// The pruning threshold: the k-th best distance so far (`MinEditDist`
    /// in the paper for k = 1).
    fn threshold(&self) -> Dist {
        if self.hits.len() < self.k {
            DIST_INF
        } else {
            self.hits[self.k - 1].distance
        }
    }

    fn into_vec(self) -> Vec<SearchHit> {
        self.hits
    }
}

/// Per-worker search state: the local top-k heap, work counters, and (in
/// parallel mode) the threshold shared across workers.
///
/// The shared atomic holds the minimum of every worker's local k-th-best
/// distance, maintained with `fetch_min`. It is always an *upper bound* on
/// the final global k-th distance — each local threshold is — so pruning
/// against it (branch cut-off and BDB trie skipping) can never drop a true
/// top-k member. That is what keeps parallel search byte-identical to the
/// sequential algorithm. Relaxed ordering suffices: the bound only ever
/// decreases, and a stale read merely prunes less.
struct SearchState<'a> {
    topk: TopK,
    stats: SearchStats,
    shared: Option<&'a AtomicU32>,
}

impl<'a> SearchState<'a> {
    fn new(k: usize, shared: Option<&'a AtomicU32>) -> SearchState<'a> {
        SearchState {
            topk: TopK::new(k),
            stats: SearchStats::default(),
            shared,
        }
    }

    fn offer(&mut self, hit: SearchHit) {
        self.topk.offer(hit);
        if let Some(shared) = self.shared {
            shared.fetch_min(self.topk.threshold(), Ordering::Relaxed);
        }
    }

    /// The tightest pruning bound visible to this worker: its own k-th best,
    /// improved by whatever the other workers have found so far.
    fn threshold(&self) -> Dist {
        let local = self.topk.threshold();
        match self.shared {
            Some(shared) => local.min(shared.load(Ordering::Relaxed)),
            None => local,
        }
    }
}

/// The structure index: arena of generated structures, one trie per token
/// length, and an inverted keyword index for the INV optimization.
#[derive(Debug, Clone)]
pub struct StructureIndex {
    /// The structure arena — owned `Structure`s when built, flattened
    /// planes when loaded from a persisted image (see [`StructStore`]).
    store: StructStore,
    /// `tries[l]` holds the shard tries over the structures of length `l`
    /// (empty for lengths with no structures; index 0 is unused). Shards
    /// partition a length's structures into contiguous arena-id blocks —
    /// disjoint sets, so searching every shard of a length is exactly
    /// searching the length.
    tries: Vec<Vec<Trie>>,
    weights: Weights,
    /// Posting lists by keyword index (SELECT/FROM/WHERE left empty).
    inverted: Vec<Vec<u32>>,
    max_len: usize,
    /// Recycled DP workspaces, shared by every search against this index.
    workspaces: WorkspacePool,
    /// Tombstone flags for arena slots removed by a delta (`removed[id]`),
    /// or empty when no slot was ever removed. Removed slots keep their
    /// arena window (ids stay stable) but are absent from every trie and
    /// posting list, so search can never return them.
    removed: Vec<bool>,
    /// Number of live (non-tombstoned) structures.
    live: usize,
    /// Content-derived arena generation; see [`StructureIndex::generation`].
    generation: u64,
}

/// Four-lane word fold: words are dealt round-robin onto four independent
/// FNV lanes, breaking the serial multiply dependency chain of a single
/// [`WordFold`] (the fold over a million-word plane is latency-bound on
/// that chain). The word count and the lane digests fold into the parent
/// in fixed order, so the combined digest still commits to the complete
/// word sequence — lane assignment is a pure function of word position.
struct LaneFold {
    lanes: [WordFold; 4],
    n: u64,
}

impl LaneFold {
    fn new(tag: u64) -> LaneFold {
        LaneFold {
            lanes: [
                WordFold::new(tag),
                WordFold::new(tag ^ 1),
                WordFold::new(tag ^ 2),
                WordFold::new(tag ^ 3),
            ],
            n: 0,
        }
    }

    fn word(&mut self, w: u64) {
        self.lanes[(self.n & 3) as usize].word(w);
        self.n += 1;
    }

    fn finish(self, f: &mut WordFold) {
        f.word(self.n);
        for lane in self.lanes {
            f.word(lane.finish());
        }
    }
}

/// Packs a token plane into LE `u64` words and folds each into a
/// [`LaneFold`], carrying partial words across slice boundaries. An Owned
/// arena feeds one slice per structure, a Flat arena feeds its whole plane
/// at once (the hot path: `chunks_exact` over the plane, no per-slot
/// boundary work) — both fold the identical word stream because the carry
/// makes word boundaries independent of how the plane is sliced.
#[derive(Default)]
struct PlaneFold {
    w: u64,
    shift: u32,
}

impl PlaneFold {
    fn feed(&mut self, f: &mut LaneFold, bytes: &[StructTokId]) {
        let mut i = 0;
        while self.shift != 0 && i < bytes.len() {
            self.w |= (bytes[i].0 as u64) << self.shift;
            self.shift += 8;
            if self.shift == 64 {
                f.word(self.w);
                self.w = 0;
                self.shift = 0;
            }
            i += 1;
        }
        let mut chunks = bytes[i..].chunks_exact(8);
        for c in &mut chunks {
            f.word(
                c[0].0 as u64
                    | (c[1].0 as u64) << 8
                    | (c[2].0 as u64) << 16
                    | (c[3].0 as u64) << 24
                    | (c[4].0 as u64) << 32
                    | (c[5].0 as u64) << 40
                    | (c[6].0 as u64) << 48
                    | (c[7].0 as u64) << 56,
            );
        }
        for b in chunks.remainder() {
            self.w |= (b.0 as u64) << self.shift;
            self.shift += 8;
        }
    }

    /// Fold any trailing partial word (zero-padded high bytes; safe because
    /// the plane length is bound by the offset framing words).
    fn flush(self, f: &mut LaneFold) {
        if self.shift != 0 {
            f.word(self.w);
        }
    }
}

/// Derive the arena generation from content: a word-level FNV-1a fold over
/// the weights, the live max length, the arena planes (cumulative window
/// offsets, tombstone bitset, token plane, placeholder records), and each
/// trie segment's [`Trie::content_id`] in segment-table order. Two indexes
/// hash equal iff their observable arenas are identical — same slots, same
/// tombstones, same segment planes — so a byte-identical reload, a clone,
/// or a rebuild over the same content all share one generation, while any
/// delta (which perturbs tombstones, slots, or segments) derives a fresh
/// one. Variable-length windows are framed by the cumulative-offset words
/// (strictly recoverable into per-slot lengths), so plane bytes cannot
/// alias across slot boundaries.
fn derive_generation(
    store: &StructStore,
    removed: &[bool],
    tries: &[Vec<Trie>],
    weights: Weights,
    max_len: usize,
) -> u64 {
    // Domain tag: "SQLXGEN3" — bump if the field framing below changes.
    let mut f = WordFold::new(u64::from_be_bytes(*b"SQLXGEN3"));
    f.word(weights.keyword as u64 | (weights.splchar as u64) << 32);
    f.word(weights.literal as u64 | (max_len as u64) << 32);
    let arena = store.len();
    f.word(arena as u64);
    // Window framing: one (token end | placeholder end << 32) word per slot.
    let mut off = LaneFold::new(u64::from_be_bytes(*b"SQLXOFF1"));
    match store {
        StructStore::Flat(fs) => {
            for id in 0..arena {
                off.word(fs.tok_offsets[id + 1] as u64 | (fs.ph_offsets[id + 1] as u64) << 32);
            }
        }
        StructStore::Owned(v) => {
            let (mut tok_end, mut ph_end) = (0u64, 0u64);
            for s in v {
                tok_end += s.tokens.len() as u64;
                ph_end += s.placeholders.len() as u64;
                off.word(tok_end | ph_end << 32);
            }
        }
    }
    off.finish(&mut f);
    // Tombstones: 64 flags packed per word over the arena width (an empty
    // `removed` folds identically to an all-false one).
    let mut bits = 0u64;
    for id in 0..arena {
        if removed.get(id).copied().unwrap_or(false) {
            bits |= 1 << (id % 64);
        }
        if id % 64 == 63 {
            f.word(bits);
            bits = 0;
        }
    }
    if !arena.is_multiple_of(64) {
        f.word(bits);
    }
    // Token plane: concatenated token bytes packed LE into u64 words.
    let mut toks = LaneFold::new(u64::from_be_bytes(*b"SQLXTOK1"));
    let mut plane = PlaneFold::default();
    match store {
        StructStore::Flat(fs) => plane.feed(&mut toks, &fs.tokens),
        StructStore::Owned(v) => {
            for s in v {
                plane.feed(&mut toks, &s.tokens);
            }
        }
    }
    plane.flush(&mut toks);
    toks.finish(&mut f);
    // Placeholder plane: one word per record, in plane order.
    match store {
        StructStore::Flat(fs) => {
            for p in &fs.placeholders {
                let gov = p.governor.map_or(u16::MAX as u64, u64::from);
                f.word(p.category as u64 | gov << 8);
            }
        }
        StructStore::Owned(v) => {
            for s in v {
                for p in &s.placeholders {
                    let gov = p.governor.map_or(u16::MAX as u64, u64::from);
                    f.word(p.category as u64 | gov << 8);
                }
            }
        }
    }
    f.word(tries.iter().map(Vec::len).sum::<usize>() as u64);
    for (len, shards) in tries.iter().enumerate() {
        for trie in shards {
            f.word(len as u64 | (trie.node_count() as u64) << 32);
            f.word(trie.content_id());
        }
    }
    f.finish()
}

/// Append `id` to the posting lists of every rare keyword in `tokens`
/// (SELECT/FROM/WHERE are skipped — they appear in nearly every structure,
/// so their lists would be useless for INV). One shared helper keeps
/// [`StructureIndex::build`] and the delta path provably in sync: a delta
/// that appends structures produces exactly the postings a full build over
/// the same arena order would.
pub(crate) fn push_postings(inverted: &mut [Vec<u32>], id: u32, tokens: &[StructTokId]) {
    let mut seen = [false; 19];
    for t in tokens {
        if let StructTok::Keyword(k) = t.tok() {
            if !matches!(k, Keyword::Select | Keyword::From | Keyword::Where) && !seen[k.index()] {
                seen[k.index()] = true;
                inverted[k.index()].push(id);
            }
        }
    }
}

impl StructureIndex {
    /// Build an index over the given structures.
    ///
    /// Each length's structures are deterministically split into
    /// `shard_count` shard tries over contiguous blocks (in arena order,
    /// preserving prefix sharing within a shard), so the layout depends only
    /// on the structure sequence — a persisted image reloads to the
    /// identical shard geometry and therefore identical work counters.
    pub fn build(structures: Vec<Structure>, weights: Weights) -> StructureIndex {
        let max_len = structures.iter().map(Structure::len).max().unwrap_or(0);
        let mut per_len = vec![0usize; max_len + 1];
        for s in &structures {
            per_len[s.len()] += 1;
        }
        let mut tries: Vec<Vec<Trie>> = per_len
            .iter()
            .enumerate()
            .map(|(len, &n)| {
                if n == 0 {
                    Vec::new()
                } else {
                    (0..shard_count(n)).map(|_| Trie::new(len)).collect()
                }
            })
            .collect();
        // Contiguous block partition: shard s of a length holds positions
        // [s * block, (s + 1) * block) of that length's arena-order run.
        let mut seen_of_len = vec![0usize; max_len + 1];
        let mut inverted: Vec<Vec<u32>> = vec![Vec::new(); 19];
        for (id, s) in structures.iter().enumerate() {
            let id = id as u32;
            let l = s.len();
            let block = per_len[l].div_ceil(tries[l].len().max(1));
            let shard = seen_of_len[l] / block.max(1);
            seen_of_len[l] += 1;
            tries[l][shard].insert(&s.tokens, id);
            push_postings(&mut inverted, id, &s.tokens);
        }
        let live = structures.len();
        let store = StructStore::Owned(structures);
        let generation = derive_generation(&store, &[], &tries, weights, max_len);
        StructureIndex {
            store,
            tries,
            weights,
            inverted,
            max_len,
            workspaces: WorkspacePool::new(),
            removed: Vec::new(),
            live,
            generation,
        }
    }

    /// Generate structures from the grammar under `cfg` and index them.
    pub fn from_grammar(cfg: &GeneratorConfig, weights: Weights) -> StructureIndex {
        StructureIndex::build(generate_structures(cfg), weights)
    }

    /// Assemble an index from already-validated parts — the persist loader's
    /// zero-copy path (tries are [`Trie`] views borrowing a persisted image)
    /// and the delta path (a mix of reused and freshly rebuilt segments).
    /// The parts must describe the same arena a [`StructureIndex::build`]
    /// over the live structures would produce, up to tombstoned slots;
    /// callers guarantee this by construction. The generation is derived
    /// from the parts' content, so a reload of the same bytes — or a delta
    /// that changes nothing — assembles to the generation it started with.
    pub(crate) fn from_parts(
        store: StructStore,
        tries: Vec<Vec<Trie>>,
        inverted: Vec<Vec<u32>>,
        weights: Weights,
        max_len: usize,
        removed: Vec<bool>,
    ) -> StructureIndex {
        let live = store.len() - removed.iter().filter(|&&r| r).count();
        let generation = derive_generation(&store, &removed, &tries, weights, max_len);
        StructureIndex {
            store,
            tries,
            weights,
            inverted,
            max_len,
            workspaces: WorkspacePool::new(),
            removed,
            live,
            generation,
        }
    }

    /// The shard tries, outer-indexed by structure length (persist writer).
    pub(crate) fn tries(&self) -> &[Vec<Trie>] {
        &self.tries
    }

    /// The inverted keyword posting lists (persist writer).
    pub(crate) fn inverted(&self) -> &[Vec<u32>] {
        &self.inverted
    }

    /// Longest indexed structure, in tokens.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Number of trie shards (segments) across all lengths.
    pub fn segment_count(&self) -> usize {
        self.tries.iter().map(Vec::len).sum()
    }

    /// Number of live (searchable) structures. Arena slots tombstoned by a
    /// delta are excluded; see [`StructureIndex::arena_len`].
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when the index holds no live structures.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of arena slots, including tombstoned ones. Arena ids returned
    /// in [`SearchHit`]s range over `0..arena_len()`; equals
    /// [`StructureIndex::len`] until a delta removes something.
    pub fn arena_len(&self) -> usize {
        self.store.len()
    }

    /// True when arena slot `id` was tombstoned by a delta. Tombstoned
    /// slots keep their arena window (so old ids stay resolvable) but are
    /// absent from every trie and posting list.
    pub fn is_removed(&self, id: u32) -> bool {
        self.removed.get(id as usize).copied().unwrap_or(false)
    }

    /// Tombstone flags (empty when nothing was ever removed); persist
    /// writer and delta path.
    pub(crate) fn removed(&self) -> &[bool] {
        &self.removed
    }

    /// The edit-operation weights the index was built with.
    pub fn weights(&self) -> Weights {
        self.weights
    }

    /// Content-derived id of this structure arena. [`SearchHit`]s reference
    /// structures by arena index, which is only meaningful against an arena
    /// with identical content — callers memoizing hits across engines (the
    /// shared skeleton cache) key on this so results can only ever be
    /// replayed against an arena where the ids resolve to the same
    /// structures. The id is a deterministic hash of the arena slots,
    /// tombstone flags, and trie segment planes (see `derive_generation`),
    /// which gives two guarantees the old process-global counter could not:
    ///
    /// - **Stability**: a byte-identical reload, a clone, or a rebuild over
    ///   the same content derives the *same* generation, so warm cache
    ///   entries stay valid across restarts and re-registrations.
    /// - **Safety**: any content change — a delta's tombstones or appends,
    ///   different weights, a different structure space — derives a
    ///   different generation, so stale hits can never be replayed against
    ///   an arena whose ids mean something else.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Owned copy of a structure by arena id (as returned in a
    /// [`SearchHit`]). Loaded indexes hold the arena flattened, so there is
    /// no resident `Structure` to borrow — callers that only need the token
    /// sequence should prefer [`StructureIndex::structure_tokens`].
    pub fn structure(&self, id: u32) -> Structure {
        self.store.materialize(id as usize)
    }

    /// Token sequence of a structure by arena id, borrowed from the arena.
    pub fn structure_tokens(&self, id: u32) -> &[StructTokId] {
        self.store.tokens(id as usize)
    }

    /// The structure arena (persist writer).
    pub(crate) fn store(&self) -> &StructStore {
        &self.store
    }

    /// Total trie nodes across all lengths and shards (the `p·k` of the
    /// paper's space complexity discussion).
    pub fn total_nodes(&self) -> usize {
        self.tries.iter().flatten().map(Trie::node_count).sum()
    }

    /// Top-k search (paper Box 2 extended to k results).
    pub fn search(&self, masked: &[StructTokId], cfg: &SearchConfig) -> Vec<SearchHit> {
        self.search_with_stats(masked, cfg).0
    }

    /// Top-k search returning work counters.
    pub fn search_with_stats(
        &self,
        masked: &[StructTokId],
        cfg: &SearchConfig,
    ) -> (Vec<SearchHit>, SearchStats) {
        self.search_observed(masked, cfg, &Recorder::disabled())
    }

    /// Top-k search that additionally publishes work counters and per-trie
    /// walk latencies into `recorder` (a strict no-op when the recorder is
    /// disabled — the hits are byte-identical either way).
    pub fn search_observed(
        &self,
        masked: &[StructTokId],
        cfg: &SearchConfig,
        recorder: &Recorder,
    ) -> (Vec<SearchHit>, SearchStats) {
        let (hits, stats) = self.search_inner(masked, cfg, recorder);
        stats.record_into(recorder);
        (hits, stats)
    }

    /// Resolve `cfg.kernel` for this query: `true` = SoA kernel.
    ///
    /// DAP's prime pre-pass re-derives individual sibling columns out of
    /// chunk order, so the approximate DAP mode stays on the scalar
    /// reference kernel; everything else takes the SoA kernel whenever the
    /// query fits the u16 lane envelope.
    fn choose_kernel(&self, masked: &[StructTokId], cfg: &SearchConfig) -> bool {
        match cfg.kernel {
            DpKernel::Scalar => false,
            DpKernel::Auto | DpKernel::Soa => {
                !cfg.dap && SoaWorkspace::fits(masked.len(), self.max_len, self.weights)
            }
        }
    }

    fn search_inner(
        &self,
        masked: &[StructTokId],
        cfg: &SearchConfig,
        recorder: &Recorder,
    ) -> (Vec<SearchHit>, SearchStats) {
        let mut state = SearchState::new(cfg.k, None);
        if self.store.is_empty() {
            return (state.topk.into_vec(), state.stats);
        }
        if cfg.inv && self.search_inverted(masked, &mut state) {
            return (state.topk.into_vec(), state.stats);
        }

        // Bidirectional order: from m downwards, then upwards (App. D.2),
        // restricted to the non-empty tries. Each (length, shard) pair is
        // one independent work unit; a length's shards are consecutive, so
        // the sequential walk still processes whole lengths in the paper's
        // order while the parallel cursor gets shard-granular fan-out.
        let m = masked.len();
        let order: Vec<(usize, usize)> = (1..=m.min(self.max_len))
            .rev()
            .chain((m + 1)..=self.max_len)
            .flat_map(|j| (0..self.tries[j].len()).map(move |s| (j, s)))
            .filter(|&(j, s)| !self.tries[j][s].is_empty())
            .collect();

        let soa = self.choose_kernel(masked, cfg);
        let workers = cfg.effective_threads().min(order.len().max(1));
        if workers > 1 {
            return self.search_parallel(masked, cfg, soa, &order, workers, recorder);
        }

        let mut cols =
            self.workspaces
                .checkout(soa, masked, self.weights, self.max_len, &mut state.stats);
        for &(j, s) in &order {
            self.search_shard(j, s, masked, cfg, &mut state, &mut cols, recorder);
        }
        state.stats.cells_evaluated += cols.take_cells();
        self.workspaces.checkin(cols);
        (state.topk.into_vec(), state.stats)
    }

    /// Search the `(length, shard)` work units in `order` with `workers`
    /// scoped threads.
    ///
    /// Shards are handed out through an atomic cursor (so a worker stuck in
    /// a large shard does not hold up the rest), each worker keeps its own
    /// [`TopK`] and [`ColumnWorkspace`], and the branch-and-bound threshold
    /// is shared through an [`AtomicU32`] so pruning improves globally as any
    /// worker finds closer structures. Shards hold disjoint structure sets —
    /// a length's shards partition its structures, and per-length tries were
    /// disjoint already — so re-offering every worker's hits into one final
    /// [`TopK`] yields exactly the sequential result: same hits, same
    /// `(distance, structure id)` order. Shard granularity is what gives a
    /// dominant length real fan-out: its [`shard_count`] shards spread
    /// across workers instead of serializing on one. Only the
    /// [`SearchStats`] are schedule-dependent (how much work pruning saved
    /// varies run to run).
    fn search_parallel(
        &self,
        masked: &[StructTokId],
        cfg: &SearchConfig,
        soa: bool,
        order: &[(usize, usize)],
        workers: usize,
        recorder: &Recorder,
    ) -> (Vec<SearchHit>, SearchStats) {
        let shared = AtomicU32::new(DIST_INF);
        // Warm the shared bound on the calling thread before spawning: the
        // first shard in the bidirectional order is from the length closest
        // to the query, and its hits carry the tightest initial threshold.
        // Without this, workers race into far-length tries the sequential
        // algorithm would have BDB-skipped outright.
        let mut seed = SearchState::new(cfg.k, Some(&shared));
        if let Some(&(j0, s0)) = order.first() {
            let mut cols =
                self.workspaces
                    .checkout(soa, masked, self.weights, self.max_len, &mut seed.stats);
            self.search_shard(j0, s0, masked, cfg, &mut seed, &mut cols, recorder);
            seed.stats.cells_evaluated += cols.take_cells();
            self.workspaces.checkin(cols);
        }
        let cursor = AtomicUsize::new(1);
        let worker_results: Vec<(TopK, SearchStats)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut state = SearchState::new(cfg.k, Some(&shared));
                        let mut cols = self.workspaces.checkout(
                            soa,
                            masked,
                            self.weights,
                            self.max_len,
                            &mut state.stats,
                        );
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&(j, s)) = order.get(i) else { break };
                            self.search_shard(j, s, masked, cfg, &mut state, &mut cols, recorder);
                        }
                        state.stats.cells_evaluated += cols.take_cells();
                        self.workspaces.checkin(cols);
                        (state.topk, state.stats)
                    })
                })
                .collect();
            handles
                .into_iter()
                // Re-raise worker panics on the calling thread: the engine's
                // containment boundary converts the unwind into a typed
                // error, so no partial top-k ever escapes a poisoned search.
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });

        let mut state = SearchState::new(cfg.k, None);
        for (topk, stats) in std::iter::once((seed.topk, seed.stats)).chain(worker_results) {
            for hit in topk.into_vec() {
                state.topk.offer(hit);
            }
            state.stats.nodes_visited += stats.nodes_visited;
            state.stats.tries_searched += stats.tries_searched;
            state.stats.tries_pruned += stats.tries_pruned;
            state.stats.structures_scanned += stats.structures_scanned;
            state.stats.cells_evaluated += stats.cells_evaluated;
            state.stats.workspaces_reused += stats.workspaces_reused;
            state.stats.shards_searched += stats.shards_searched;
            state.stats.shards_pruned += stats.shards_pruned;
        }
        (state.topk.into_vec(), state.stats)
    }

    /// Search one trie shard (assumed non-empty), with the BDB skip — the
    /// Proposition 1 bound depends only on the lengths, so it applies to a
    /// shard exactly as it did to the whole per-length trie. Each walked
    /// shard records one `search.trie_walk` latency sample.
    ///
    /// The per-length counters keep their historical meaning by counting
    /// only shard 0's verdict: the shared threshold only ever tightens, so
    /// in the sequential order shard 0 pruned implies every later shard of
    /// that length pruned, making "shard 0's verdict" exactly "the length's
    /// verdict". The shard-granular work is counted separately in
    /// `shards_searched` / `shards_pruned`.
    #[allow(clippy::too_many_arguments)]
    fn search_shard(
        &self,
        j: usize,
        shard: usize,
        masked: &[StructTokId],
        cfg: &SearchConfig,
        state: &mut SearchState<'_>,
        cols: &mut DpCols,
        recorder: &Recorder,
    ) {
        if cfg.bdb && state.threshold() < lower_bound(masked.len(), j, self.weights) {
            if shard == 0 {
                state.stats.tries_pruned += 1;
            }
            state.stats.shards_pruned += 1;
            return;
        }
        if shard == 0 {
            state.stats.tries_searched += 1;
        }
        state.stats.shards_searched += 1;
        let _span = recorder.span(SpanId::TrieWalk);
        self.search_trie(&self.tries[j][shard], j, masked, cfg, state, cols, recorder);
    }

    /// Brute-force reference scan over every live structure; used by tests
    /// to certify that trie search (with or without BDB) is exact.
    pub fn scan(&self, masked: &[StructTokId], k: usize) -> Vec<SearchHit> {
        let mut topk = TopK::new(k);
        for id in 0..self.store.len() {
            if self.removed.get(id).copied().unwrap_or(false) {
                continue;
            }
            let d = weighted_lcs_distance(masked, self.store.tokens(id), self.weights);
            topk.offer(SearchHit {
                structure: id as u32,
                distance: d,
            });
        }
        topk.into_vec()
    }

    #[allow(clippy::too_many_arguments)]
    fn search_trie(
        &self,
        trie: &Trie,
        target_len: usize,
        masked: &[StructTokId],
        cfg: &SearchConfig,
        state: &mut SearchState<'_>,
        cols: &mut DpCols,
        recorder: &Recorder,
    ) {
        match cols {
            DpCols::Scalar(cols) => TrieWalk {
                index: self,
                trie,
                target_len,
                masked,
                cfg,
                state,
                cols,
                recorder,
            }
            .visit_children(0, 0),
            DpCols::Soa(cols) => SoaTrieWalk {
                trie,
                target_len,
                state,
                cols,
                recorder,
            }
            .visit_children(0, 0, 0),
        }
    }

    /// INV (App. D.3): if `MaskOut` mentions a keyword other than
    /// SELECT/FROM/WHERE, exhaustively compare only the structures in that
    /// keyword's posting list (picking the rarest such keyword). Returns
    /// `false` when inapplicable, in which case the caller falls back to
    /// trie search.
    fn search_inverted(&self, masked: &[StructTokId], state: &mut SearchState<'_>) -> bool {
        let mut best_postings: Option<&Vec<u32>> = None;
        for t in masked {
            if let StructTok::Keyword(k) = t.tok() {
                if matches!(k, Keyword::Select | Keyword::From | Keyword::Where) {
                    continue;
                }
                let postings = &self.inverted[k.index()];
                if postings.is_empty() {
                    continue;
                }
                if best_postings.is_none_or(|p| postings.len() < p.len()) {
                    best_postings = Some(postings);
                }
            }
        }
        let Some(postings) = best_postings else {
            return false;
        };
        // Arena ids are sorted by structure length as built (deltas append
        // at the tail, so the order is only approximately maintained after
        // churn — INV is a documented approximation either way, and a
        // delta'd arena and its full rebuild see the identical id order, so
        // both resolve the same candidates). Scan outward from the
        // candidates closest in length to the query: they carry the
        // smallest Proposition 1 lower bounds, which tightens the
        // early-abandon threshold immediately.
        let m = masked.len();
        let pivot = postings.partition_point(|&id| self.store.token_len(id as usize) < m);
        let (mut lo, mut hi) = (pivot, pivot);
        loop {
            // Pick whichever side is closer in length to the query.
            let lo_gap = lo
                .checked_sub(1)
                .map(|i| m.abs_diff(self.store.token_len(postings[i] as usize)))
                .unwrap_or(usize::MAX);
            let hi_gap = postings
                .get(hi)
                .map(|&id| m.abs_diff(self.store.token_len(id as usize)))
                .unwrap_or(usize::MAX);
            if lo_gap == usize::MAX && hi_gap == usize::MAX {
                break;
            }
            let id = if hi_gap <= lo_gap {
                hi += 1;
                postings[hi - 1]
            } else {
                lo -= 1;
                postings[lo]
            };
            let target = self.store.tokens(id as usize);
            let bound = state.threshold();
            // Proposition 1: once even the length-gap lower bound exceeds
            // the k-th best distance, no remaining structure (all further in
            // length) can qualify.
            if bound < lower_bound(m, target.len(), self.weights) {
                break;
            }
            state.stats.structures_scanned += 1;
            let d = if bound == DIST_INF {
                Some(weighted_lcs_distance(masked, target, self.weights))
            } else {
                weighted_lcs_distance_bounded(masked, target, self.weights, bound)
            };
            if let Some(d) = d {
                state.offer(SearchHit {
                    structure: id,
                    distance: d,
                });
            }
        }
        true
    }
}

/// One trie walk: the recursion of Box 2's `SearchRecursively` with the
/// query, config, per-worker state, and DP columns bundled together.
struct TrieWalk<'a, 'b, 'c> {
    index: &'a StructureIndex,
    trie: &'a Trie,
    /// Token length of every structure in this trie (tries are per-length).
    target_len: usize,
    masked: &'a [StructTokId],
    cfg: &'a SearchConfig,
    state: &'b mut SearchState<'c>,
    cols: &'b mut ColumnWorkspace,
    recorder: &'a Recorder,
}

impl TrieWalk<'_, '_, '_> {
    fn visit_children(&mut self, node: u32, depth: usize) {
        let w = self.index.weights;
        // DAP (App. D.3): among sibling children whose tokens are in the
        // prime superset, explore only the one whose column's last row is
        // minimal; other children are unaffected.
        let chosen_prime: Option<u32> = if self.cfg.dap {
            let mut best: Option<(Dist, u32)> = None;
            for child in self.trie.children(node) {
                let tok = self.trie.token(child);
                if !is_prime(tok) {
                    continue;
                }
                let col = self.cols.advance(self.masked, depth, tok, w);
                self.state.stats.nodes_visited += 1;
                // A DP column always has masked.len()+1 rows; an empty one
                // can only mean a workspace bug, and INF makes it inert.
                let last = *col.last().unwrap_or(&DIST_INF);
                if best.is_none_or(|(d, _)| last < d) {
                    best = Some((last, child));
                }
            }
            best.map(|(_, c)| c)
        } else {
            None
        };

        let mut fanout: u64 = 0;
        for child in self.trie.children(node) {
            fanout += 1;
            let tok = self.trie.token(child);
            if self.cfg.dap && is_prime(tok) && Some(child) != chosen_prime {
                continue;
            }
            let col = self.cols.advance(self.masked, depth, tok, w);
            self.state.stats.nodes_visited += 1;
            // As above: a column is structurally non-empty, and INF keeps a
            // hypothetical empty one from producing a hit or a descent.
            let last = *col.last().unwrap_or(&DIST_INF);
            // Banded descend bound: cell `i` still has to reconcile `m − i`
            // source tokens with the `rem` target tokens below this child,
            // which costs at least `w_min · |(m − i) − rem|` (Proposition 1).
            // Adding that completion cost cell-wise tightens Box 2's raw
            // column minimum into a diagonal band while staying an exact
            // lower bound on every descendant's final distance. Must compute
            // the identical value to the SoA kernel's `ChunkStats::bound`.
            let rem = self.target_len - (depth + 1);
            let m = self.masked.len();
            let wmin = w.min_weight();
            let bound = col
                .iter()
                .enumerate()
                .map(|(i, &v)| v + wmin * (m - i).abs_diff(rem) as Dist)
                .min()
                .unwrap_or(DIST_INF);
            let terminal = self.trie.structure(child);
            if terminal != NONE {
                self.state.offer(SearchHit {
                    structure: terminal,
                    distance: last,
                });
            }
            // Box 2 line 46: explore deeper only if the banded bound can
            // still beat the current k-th best ("min(DpCurCol) ≤ MinEditDist").
            if self.trie.first_child(child) != NONE && bound <= self.state.threshold() {
                self.visit_children(child, depth + 1);
            }
        }
        self.recorder.record_value(SpanId::TrieFanout, fanout);
    }
}

/// The chunked trie walk over the branchless SoA kernel.
///
/// Same recursion as [`TrieWalk`], but sibling children are advanced in
/// chunks of up to [`SOA_LANES`]: one [`SoaWorkspace::advance_chunk`] call
/// computes every sibling's DP column simultaneously, so each
/// transcript-token load (and each parent-column cell load) amortizes over
/// the whole chunk instead of being re-fetched per child.
///
/// Traversal order is *identical* to the scalar walk. The scalar loop
/// advances every child's column unconditionally (pruning only gates the
/// descent), so hoisting the column computation to the chunk head changes
/// neither which columns are computed nor the offer/descend sequence — each
/// lane's offer and descend still happen in sibling order, with the
/// threshold exactly as tight as the scalar walk would have it at that
/// point. Hits, `nodes_visited`, and `cells_evaluated` are all
/// byte-identical; the kernel-parity suite enforces this.
struct SoaTrieWalk<'a, 'b, 'c> {
    trie: &'a Trie,
    /// Token length of every structure in this trie (tries are per-length).
    target_len: usize,
    state: &'b mut SearchState<'c>,
    cols: &'b mut SoaWorkspace,
    recorder: &'a Recorder,
}

impl SoaTrieWalk<'_, '_, '_> {
    /// Visit the children of `node`, whose own DP column lives at lane
    /// `parent_lane` of block `depth` in the workspace. Descending into the
    /// child at lane `c` only ever writes blocks deeper than `depth + 1`, so
    /// the chunk's sibling columns stay intact across recursion.
    fn visit_children(&mut self, node: u32, depth: usize, parent_lane: usize) {
        let rem = self.target_len - (depth + 1);
        let mut fanout: u64 = 0;
        let mut children = self.trie.children(node);
        let mut pending = children.next();
        while let Some(first) = pending {
            pending = children.next();
            // Fanout-1 nodes dominate real tries; route them through the
            // padless single-column kernel with no gather arrays and no
            // ChunkStats round-trip through memory.
            if pending.is_none() && fanout == 0 {
                fanout = 1;
                let tok = self.trie.token(first);
                let (last, bound) = self.cols.advance_single(depth, parent_lane, tok, rem);
                self.visit_one(first, depth, 0, last, bound);
                break;
            }
            let mut ids = [0u32; SOA_LANES];
            let mut toks = [StructTokId(0); SOA_LANES];
            ids[0] = first;
            toks[0] = self.trie.token(first);
            let mut n = 1;
            while let Some(child) = pending {
                ids[n] = child;
                toks[n] = self.trie.token(child);
                n += 1;
                pending = children.next();
                if n == SOA_LANES {
                    break;
                }
            }
            fanout += n as u64;
            if n == 1 {
                let (last, bound) = self.cols.advance_single(depth, parent_lane, toks[0], rem);
                self.visit_one(ids[0], depth, 0, last, bound);
                continue;
            }
            let chunk = self.cols.advance_chunk(depth, parent_lane, &toks[..n], rem);
            for (c, &child) in ids[..n].iter().enumerate() {
                self.visit_one(child, depth, c, chunk.last[c], chunk.bound[c]);
            }
        }
        self.recorder.record_value(SpanId::TrieFanout, fanout);
    }

    /// Offer-and-descend for one freshly advanced child column: exactly the
    /// per-child tail of the scalar walk's loop body.
    #[inline]
    fn visit_one(&mut self, child: u32, depth: usize, lane: usize, last: Dist, bound: Dist) {
        self.state.stats.nodes_visited += 1;
        let terminal = self.trie.structure(child);
        if terminal != NONE {
            self.state.offer(SearchHit {
                structure: terminal,
                distance: last,
            });
        }
        // Box 2 line 46, per lane: descend only while the banded bound can
        // still beat the current k-th best.
        if self.trie.first_child(child) != NONE && bound <= self.state.threshold() {
            self.visit_children(child, depth + 1, lane);
        }
    }
}

fn is_prime(tok: StructTokId) -> bool {
    match tok.tok() {
        StructTok::Keyword(k) => k.in_prime_superset(),
        StructTok::SplChar(c) => c.in_prime_superset(),
        StructTok::Var => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speakql_grammar::{process_transcript_text, Placeholder};

    fn kw(k: Keyword) -> StructTok {
        StructTok::Keyword(k)
    }

    fn small_index() -> &'static StructureIndex {
        static IDX: std::sync::OnceLock<StructureIndex> = std::sync::OnceLock::new();
        IDX.get_or_init(|| StructureIndex::from_grammar(&GeneratorConfig::small(), Weights::PAPER))
    }

    #[test]
    fn exact_match_has_zero_distance() {
        let idx = small_index();
        let p = process_transcript_text("select salary from employees where name equals john");
        let hits = idx.search(&p.masked, &SearchConfig::default());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].distance, 0);
        assert_eq!(
            idx.structure(hits[0].structure).render(),
            "SELECT x1 FROM x2 WHERE x3 = x4"
        );
    }

    #[test]
    fn running_example_with_noise_recovers_structure() {
        // §3.1: "select sales from employers wear first name equals Jon"
        // masks to SELECT x FROM x x x x = x; closest structure is the
        // 8-token SELECT x FROM x WHERE x = x.
        let idx = small_index();
        let p = process_transcript_text("select sales from employers wear first name equals Jon");
        let hits = idx.search(&p.masked, &SearchConfig::default());
        assert_eq!(
            idx.structure(hits[0].structure).render(),
            "SELECT x1 FROM x2 WHERE x3 = x4"
        );
    }

    #[test]
    fn trie_search_matches_brute_force() {
        let idx = small_index();
        let probes = [
            "select star from employees",
            "select sum open parenthesis salary close parenthesis from salaries",
            "select a comma b from t where x greater than y and p equals q",
            "select a from t order by b",
            "completely unrelated words only",
            "",
        ];
        for probe in probes {
            let p = process_transcript_text(probe);
            for k in [1usize, 5] {
                let cfg = SearchConfig {
                    k,
                    ..SearchConfig::default()
                };
                let trie_hits = idx.search(&p.masked, &cfg);
                let scan_hits = idx.scan(&p.masked, k);
                assert_eq!(trie_hits, scan_hits, "probe={probe} k={k}");
            }
        }
    }

    #[test]
    fn bdb_is_accuracy_preserving() {
        let idx = small_index();
        let p = process_transcript_text("select a from t where b equals c or d less than e");
        for k in [1usize, 3, 5] {
            let with = idx.search(
                &p.masked,
                &SearchConfig {
                    k,
                    bdb: true,
                    ..Default::default()
                },
            );
            let without = idx.search(
                &p.masked,
                &SearchConfig {
                    k,
                    bdb: false,
                    ..Default::default()
                },
            );
            assert_eq!(with, without);
        }
    }

    #[test]
    fn bdb_prunes_tries() {
        let idx = small_index();
        let p = process_transcript_text("select a from t");
        let (_, stats_bdb) = idx.search_with_stats(
            &p.masked,
            &SearchConfig {
                bdb: true,
                ..Default::default()
            },
        );
        let (_, stats_no) = idx.search_with_stats(
            &p.masked,
            &SearchConfig {
                bdb: false,
                ..Default::default()
            },
        );
        assert!(stats_bdb.tries_pruned > 0);
        assert!(stats_bdb.nodes_visited < stats_no.nodes_visited);
    }

    #[test]
    fn dap_visits_fewer_nodes() {
        let idx = small_index();
        let p = process_transcript_text(
            "select avg open parenthesis salary close parenthesis from salaries where a equals b",
        );
        let (hits_dap, stats_dap) = idx.search_with_stats(
            &p.masked,
            &SearchConfig {
                dap: true,
                ..Default::default()
            },
        );
        let (_, stats_def) = idx.search_with_stats(&p.masked, &SearchConfig::default());
        assert!(stats_dap.nodes_visited <= stats_def.nodes_visited);
        assert!(!hits_dap.is_empty());
    }

    #[test]
    fn inv_scans_posting_lists() {
        let idx = small_index();
        let p = process_transcript_text("select a from t where b between c and d");
        let (hits, stats) = idx.search_with_stats(
            &p.masked,
            &SearchConfig {
                inv: true,
                ..Default::default()
            },
        );
        assert!(stats.structures_scanned > 0);
        assert_eq!(stats.tries_searched, 0);
        // BETWEEN structures are rare, and the probe matches one exactly.
        assert_eq!(hits[0].distance, 0);
    }

    #[test]
    fn inv_falls_back_without_rare_keywords() {
        let idx = small_index();
        let p = process_transcript_text("select a from t");
        let (hits, stats) = idx.search_with_stats(
            &p.masked,
            &SearchConfig {
                inv: true,
                ..Default::default()
            },
        );
        assert!(stats.structures_scanned == 0 && stats.tries_searched > 0);
        assert_eq!(hits[0].distance, 0);
    }

    #[test]
    fn figure10_bidirectional_example() {
        // Fig. 10: TransOut = A B A (3 literals); per-length tries containing
        // {A}, {A B, C C}, {A B C, ...}. We emulate with literal-only
        // structures of lengths 1..3 and check the search returns the
        // 2-token structure at distance 1.0 (one delete at W_L).
        let mk =
            |n: usize| Structure::new(vec![StructTok::Var; n], vec![Placeholder::attribute(); n]);
        let idx = StructureIndex::build(vec![mk(1), mk(2), mk(3)], Weights::PAPER);
        let masked = vec![StructTokId::VAR; 3];
        let hits = idx.search(&masked, &SearchConfig::default());
        // All-Var structures: the 3-token one matches exactly.
        assert_eq!(hits[0].distance, 0);
        assert_eq!(idx.structure(hits[0].structure).len(), 3);
    }

    #[test]
    fn top5_is_sorted_and_distinct() {
        let idx = small_index();
        let p = process_transcript_text("select a from t where b equals c");
        let hits = idx.search(&p.masked, &SearchConfig::top_k(5));
        assert_eq!(hits.len(), 5);
        for w in hits.windows(2) {
            assert!(
                (w[0].distance, w[0].structure) < (w[1].distance, w[1].structure),
                "hits must be strictly ordered"
            );
        }
        assert_eq!(hits[0].distance, 0);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = StructureIndex::build(vec![], Weights::PAPER);
        let masked = vec![StructTokId::from_tok(kw(Keyword::Select))];
        assert!(idx.search(&masked, &SearchConfig::default()).is_empty());
    }

    #[test]
    fn generation_is_content_derived() {
        // Same content ⇒ same generation (two independent builds — the old
        // process-global counter gave these distinct ids and cold-started
        // every cache that keyed on them)...
        let a = StructureIndex::from_grammar(&GeneratorConfig::small(), Weights::PAPER);
        let b = StructureIndex::from_grammar(&GeneratorConfig::small(), Weights::PAPER);
        assert_eq!(a.generation(), b.generation());
        // ... while any content difference — structure space or weights —
        // derives a different generation.
        let smaller = StructureIndex::from_grammar(
            &GeneratorConfig {
                max_structures: Some(500),
                ..GeneratorConfig::small()
            },
            Weights::PAPER,
        );
        assert_ne!(a.generation(), smaller.generation());
        let reweighted = StructureIndex::from_grammar(
            &GeneratorConfig::small(),
            Weights {
                keyword: 9,
                ..Weights::PAPER
            },
        );
        assert_ne!(a.generation(), reweighted.generation());
    }

    #[test]
    fn clones_share_the_generation() {
        let idx = small_index();
        assert_eq!(idx.clone().generation(), idx.generation());
        assert_eq!(idx.len(), idx.arena_len(), "no tombstones on a build");
        assert!(!idx.is_removed(0));
    }
}
