//! Per-length tries over ground-truth structures (paper §3.3).
//!
//! All generated structures of one token length are packed into one trie;
//! a path from root to leaf spells a structure's token sequence, and the
//! leaf stores the structure's id in the arena. The paper stores "50
//! disjoint tries, one per structure length", trading memory for latency.
//!
//! Nodes use the compact first-child/next-sibling representation: 16 bytes
//! per node, no per-node allocation.

use speakql_grammar::StructTokId;

pub(crate) const NONE: u32 = u32::MAX;

/// One trie node. The token labels the *incoming* edge.
#[derive(Debug, Clone, Copy)]
pub struct Node {
    pub token: StructTokId,
    pub first_child: u32,
    pub next_sibling: u32,
    /// Structure id if this node terminates a structure (always at depth
    /// equal to the trie's length), else `NONE`.
    pub structure: u32,
}

/// A trie over equal-length token sequences.
#[derive(Debug, Clone)]
pub struct Trie {
    /// Token length of every sequence stored here.
    pub len: usize,
    /// Node arena; index 0 is the root (whose token is unused).
    nodes: Vec<Node>,
}

impl Trie {
    /// An empty trie for token sequences of exactly `len` tokens, holding
    /// only the root node.
    pub fn new(len: usize) -> Trie {
        Trie {
            len,
            nodes: vec![Node {
                token: StructTokId::VAR,
                first_child: NONE,
                next_sibling: NONE,
                structure: NONE,
            }],
        }
    }

    /// Access a node by arena index (0 = root).
    pub fn node(&self, idx: u32) -> &Node {
        &self.nodes[idx as usize]
    }

    /// Number of nodes in the arena, including the root.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// True when no sequence has been inserted.
    pub fn is_empty(&self) -> bool {
        self.nodes[0].first_child == NONE
    }

    /// Iterate the children of a node in insertion order.
    pub fn children(&self, idx: u32) -> ChildIter<'_> {
        ChildIter {
            trie: self,
            next: self.nodes[idx as usize].first_child,
        }
    }

    /// Insert a token sequence; `structure` is its arena id. Sequences must
    /// have exactly `self.len` tokens and be unique.
    pub fn insert(&mut self, tokens: &[StructTokId], structure: u32) {
        debug_assert_eq!(tokens.len(), self.len);
        let mut cur = 0u32;
        for &tok in tokens {
            cur = self.child_or_insert(cur, tok);
        }
        debug_assert_eq!(
            self.nodes[cur as usize].structure, NONE,
            "duplicate structure"
        );
        self.nodes[cur as usize].structure = structure;
    }

    fn child_or_insert(&mut self, parent: u32, tok: StructTokId) -> u32 {
        // Find an existing child with this token.
        let mut prev = NONE;
        let mut cur = self.nodes[parent as usize].first_child;
        while cur != NONE {
            if self.nodes[cur as usize].token == tok {
                return cur;
            }
            prev = cur;
            cur = self.nodes[cur as usize].next_sibling;
        }
        // Append a new child at the end of the sibling list so iteration
        // order matches insertion (= arena) order, keeping search results
        // deterministic.
        let new_idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            token: tok,
            first_child: NONE,
            next_sibling: NONE,
            structure: NONE,
        });
        if prev == NONE {
            self.nodes[parent as usize].first_child = new_idx;
        } else {
            self.nodes[prev as usize].next_sibling = new_idx;
        }
        new_idx
    }
}

/// Iterator over the children of a trie node.
pub struct ChildIter<'a> {
    trie: &'a Trie,
    next: u32,
}

impl<'a> Iterator for ChildIter<'a> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.next == NONE {
            return None;
        }
        let cur = self.next;
        self.next = self.trie.nodes[cur as usize].next_sibling;
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speakql_grammar::{Keyword, StructTok};

    fn kw(k: Keyword) -> StructTokId {
        StructTokId::from_tok(StructTok::Keyword(k))
    }
    fn var() -> StructTokId {
        StructTokId::VAR
    }

    #[test]
    fn shared_prefixes_share_nodes() {
        let mut t = Trie::new(3);
        // SELECT x FROM  /  SELECT x WHERE (not a real structure; trie is
        // agnostic) share the 2-token prefix.
        t.insert(&[kw(Keyword::Select), var(), kw(Keyword::From)], 0);
        t.insert(&[kw(Keyword::Select), var(), kw(Keyword::Where)], 1);
        // root + SELECT + x + FROM + WHERE = 5 nodes
        assert_eq!(t.node_count(), 5);
    }

    #[test]
    fn leaves_store_structure_ids() {
        let mut t = Trie::new(2);
        t.insert(&[kw(Keyword::Select), var()], 42);
        let Some(c1) = t.children(0).next() else {
            panic!("root must have a child after insert");
        };
        let Some(c2) = t.children(c1).next() else {
            panic!("depth-1 node must have a child after insert");
        };
        assert_eq!(t.node(c2).structure, 42);
        assert_eq!(t.node(c1).structure, NONE);
    }

    #[test]
    fn children_iterate_in_insertion_order() {
        let mut t = Trie::new(1);
        t.insert(&[kw(Keyword::Where)], 0);
        t.insert(&[kw(Keyword::Select)], 1);
        t.insert(&[var()], 2);
        let toks: Vec<StructTokId> = t.children(0).map(|c| t.node(c).token).collect();
        assert_eq!(toks, vec![kw(Keyword::Where), kw(Keyword::Select), var()]);
    }

    #[test]
    fn empty_trie() {
        let t = Trie::new(5);
        assert!(t.is_empty());
        assert_eq!(t.children(0).count(), 0);
    }
}
