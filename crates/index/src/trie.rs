//! Per-length trie shards over ground-truth structures (paper §3.3).
//!
//! All generated structures of one token length are packed into tries; a
//! path from root to leaf spells a structure's token sequence, and the leaf
//! stores the structure's id in the arena. The paper stores "50 disjoint
//! tries, one per structure length", trading memory for latency; this
//! implementation additionally splits each length's structures across
//! multiple *shard* tries (see `StructureIndex::build`) so parallel search
//! has real fan-out even when one length dominates.
//!
//! Nodes live in four structure-of-arrays planes (token / first-child /
//! next-sibling / structure) in the compact first-child/next-sibling
//! representation: 13 bytes per node, no per-node allocation. The planes
//! come in two forms behind one accessor surface:
//!
//! - **Owned** — `Vec` planes built in memory by [`Trie::insert`].
//! - **View** — [`Bytes`] planes borrowed zero-copy from a validated
//!   persisted image (see `persist`). Views are immutable; they are only
//!   constructed after the loader has bounds- and checksum-validated the
//!   planes, so accessors never need to re-check on the hot path beyond the
//!   slice bounds checks the borrow checker already demands.

use crate::content::StreamChecksum;
use bytes::Bytes;
use speakql_grammar::StructTokId;

pub(crate) const NONE: u32 = u32::MAX;

/// One trie node, materialized by value from the storage planes. The token
/// labels the *incoming* edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node {
    /// Token on the edge from the parent.
    pub token: StructTokId,
    /// Arena index of the first child, or `u32::MAX` for a leaf.
    pub first_child: u32,
    /// Arena index of the next sibling, or `u32::MAX` for the last child.
    pub next_sibling: u32,
    /// Structure id if this node terminates a structure (always at depth
    /// equal to the trie's length), else `u32::MAX`.
    pub structure: u32,
}

/// Node storage: four planes, either owned and growable or borrowed
/// zero-copy from a persisted image.
#[derive(Debug, Clone)]
enum NodeStore {
    Owned {
        token: Vec<StructTokId>,
        first_child: Vec<u32>,
        next_sibling: Vec<u32>,
        structure: Vec<u32>,
    },
    View {
        count: usize,
        /// The segment's content id — the persisted-format checksum of the
        /// planes, recorded (and verified) at load time so identity checks
        /// never rehash the borrowed bytes. See [`Trie::content_id`].
        content: u64,
        /// One byte per node.
        token: Bytes,
        /// Little-endian `u32` per node.
        first_child: Bytes,
        next_sibling: Bytes,
        structure: Bytes,
    },
}

/// Read the `idx`-th little-endian `u32` of a validated plane. Out-of-range
/// reads (impossible on validated views) yield the inert `NONE` sentinel
/// instead of panicking.
#[inline]
fn plane_u32(plane: &Bytes, idx: u32) -> u32 {
    let i = idx as usize * 4;
    match plane.get(i..i + 4) {
        Some(&[a, b, c, d]) => u32::from_le_bytes([a, b, c, d]),
        _ => NONE,
    }
}

/// A trie over equal-length token sequences.
#[derive(Debug, Clone)]
pub struct Trie {
    /// Token length of every sequence stored here.
    pub len: usize,
    nodes: NodeStore,
}

impl Trie {
    /// An empty, owned trie for token sequences of exactly `len` tokens,
    /// holding only the root node.
    pub fn new(len: usize) -> Trie {
        Trie {
            len,
            nodes: NodeStore::Owned {
                token: vec![StructTokId::VAR],
                first_child: vec![NONE],
                next_sibling: vec![NONE],
                structure: vec![NONE],
            },
        }
    }

    /// A trie whose node planes are zero-copy views over a validated
    /// persisted image. `count` is the node count; each `u32` plane holds
    /// `count` little-endian values and the token plane `count` bytes.
    /// `content` is the segment's verified plane checksum, kept as the
    /// content id. The caller (the persist loader) has already validated
    /// bounds, checksums, and structural invariants.
    pub(crate) fn from_view(
        len: usize,
        count: usize,
        content: u64,
        token: Bytes,
        first_child: Bytes,
        next_sibling: Bytes,
        structure: Bytes,
    ) -> Trie {
        Trie {
            len,
            nodes: NodeStore::View {
                count,
                content,
                token,
                first_child,
                next_sibling,
                structure,
            },
        }
    }

    /// The segment's content id: the persisted-format checksum
    /// (`content::checksum64` semantics) of this trie's serialized node
    /// planes — token bytes, zero-padding to a 4-byte boundary, then the
    /// first-child / next-sibling / structure planes as little-endian
    /// `u32`s. Views return the checksum recorded (and verified) at load
    /// time without touching the planes; owned tries stream the identical
    /// byte sequence the persist writer would emit. Equal planes therefore
    /// yield equal ids whether a segment was built, loaded, or carried
    /// across a delta, which is what lets the arena generation be derived
    /// from content rather than minted per process.
    pub(crate) fn content_id(&self) -> u64 {
        match &self.nodes {
            NodeStore::View { content, .. } => *content,
            NodeStore::Owned {
                token,
                first_child,
                next_sibling,
                structure,
            } => {
                let n = token.len();
                let padded = n.next_multiple_of(4);
                let mut h = StreamChecksum::new(padded + 12 * n);
                let mut tmp = [0u8; 64];
                for chunk in token.chunks(tmp.len()) {
                    for (b, t) in tmp.iter_mut().zip(chunk) {
                        *b = t.0;
                    }
                    h.update(&tmp[..chunk.len()]);
                }
                h.update(&[0u8; 4][..padded - n]);
                for plane in [first_child, next_sibling, structure] {
                    for &v in plane {
                        h.update_u32_le(v);
                    }
                }
                h.finish()
            }
        }
    }

    /// The four borrowed planes of a zero-copy view (token, first-child,
    /// next-sibling, structure), or `None` for an owned trie. The persist
    /// writer uses this to bulk-copy unchanged segments instead of
    /// re-serializing them node by node.
    pub(crate) fn view_planes(&self) -> Option<(&Bytes, &Bytes, &Bytes, &Bytes)> {
        match &self.nodes {
            NodeStore::Owned { .. } => None,
            NodeStore::View {
                token,
                first_child,
                next_sibling,
                structure,
                ..
            } => Some((token, first_child, next_sibling, structure)),
        }
    }

    /// Token on the incoming edge of node `idx`.
    #[inline]
    pub fn token(&self, idx: u32) -> StructTokId {
        match &self.nodes {
            NodeStore::Owned { token, .. } => token[idx as usize],
            NodeStore::View { token, .. } => {
                StructTokId(token.get(idx as usize).copied().unwrap_or(0))
            }
        }
    }

    /// Arena index of node `idx`'s first child (`u32::MAX` = leaf).
    #[inline]
    pub fn first_child(&self, idx: u32) -> u32 {
        match &self.nodes {
            NodeStore::Owned { first_child, .. } => first_child[idx as usize],
            NodeStore::View { first_child, .. } => plane_u32(first_child, idx),
        }
    }

    /// Arena index of node `idx`'s next sibling (`u32::MAX` = last child).
    #[inline]
    pub fn next_sibling(&self, idx: u32) -> u32 {
        match &self.nodes {
            NodeStore::Owned { next_sibling, .. } => next_sibling[idx as usize],
            NodeStore::View { next_sibling, .. } => plane_u32(next_sibling, idx),
        }
    }

    /// Structure id terminated at node `idx` (`u32::MAX` = none).
    #[inline]
    pub fn structure(&self, idx: u32) -> u32 {
        match &self.nodes {
            NodeStore::Owned { structure, .. } => structure[idx as usize],
            NodeStore::View { structure, .. } => plane_u32(structure, idx),
        }
    }

    /// Materialize a node by arena index (0 = root).
    pub fn node(&self, idx: u32) -> Node {
        Node {
            token: self.token(idx),
            first_child: self.first_child(idx),
            next_sibling: self.next_sibling(idx),
            structure: self.structure(idx),
        }
    }

    /// Number of nodes in the arena, including the root.
    pub fn node_count(&self) -> usize {
        match &self.nodes {
            NodeStore::Owned { token, .. } => token.len(),
            NodeStore::View { count, .. } => *count,
        }
    }

    /// True when no sequence has been inserted.
    pub fn is_empty(&self) -> bool {
        self.first_child(0) == NONE
    }

    /// Iterate the children of a node in insertion order.
    pub fn children(&self, idx: u32) -> ChildIter<'_> {
        ChildIter {
            trie: self,
            next: self.first_child(idx),
        }
    }

    /// Insert a token sequence; `structure` is its arena id. Sequences must
    /// have exactly `self.len` tokens and be unique. Insertion targets
    /// owned tries only; zero-copy views are sealed at load time, and
    /// inserting into one is an inert no-op.
    pub fn insert(&mut self, tokens: &[StructTokId], structure: u32) {
        debug_assert_eq!(tokens.len(), self.len);
        let mut cur = 0u32;
        for &tok in tokens {
            cur = self.child_or_insert(cur, tok);
        }
        debug_assert_eq!(self.structure(cur), NONE, "duplicate structure");
        if let NodeStore::Owned {
            structure: plane, ..
        } = &mut self.nodes
        {
            plane[cur as usize] = structure;
        }
    }

    fn child_or_insert(&mut self, parent: u32, tok: StructTokId) -> u32 {
        // Find an existing child with this token.
        let mut prev = NONE;
        let mut cur = self.first_child(parent);
        while cur != NONE {
            if self.token(cur) == tok {
                return cur;
            }
            prev = cur;
            cur = self.next_sibling(cur);
        }
        let NodeStore::Owned {
            token,
            first_child,
            next_sibling,
            structure,
        } = &mut self.nodes
        else {
            // Views are sealed (see `insert`); returning the parent keeps a
            // misuse inert instead of panicking.
            debug_assert!(false, "insert into a zero-copy trie view");
            return parent;
        };
        // Append a new child at the end of the sibling list so iteration
        // order matches insertion (= arena) order, keeping search results
        // deterministic.
        let new_idx = token.len() as u32;
        token.push(tok);
        first_child.push(NONE);
        next_sibling.push(NONE);
        structure.push(NONE);
        if prev == NONE {
            first_child[parent as usize] = new_idx;
        } else {
            next_sibling[prev as usize] = new_idx;
        }
        new_idx
    }
}

/// Iterator over the children of a trie node.
pub struct ChildIter<'a> {
    trie: &'a Trie,
    next: u32,
}

impl<'a> Iterator for ChildIter<'a> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.next == NONE {
            return None;
        }
        let cur = self.next;
        self.next = self.trie.next_sibling(cur);
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speakql_grammar::{Keyword, StructTok};

    fn kw(k: Keyword) -> StructTokId {
        StructTokId::from_tok(StructTok::Keyword(k))
    }
    fn var() -> StructTokId {
        StructTokId::VAR
    }

    #[test]
    fn shared_prefixes_share_nodes() {
        let mut t = Trie::new(3);
        // SELECT x FROM  /  SELECT x WHERE (not a real structure; trie is
        // agnostic) share the 2-token prefix.
        t.insert(&[kw(Keyword::Select), var(), kw(Keyword::From)], 0);
        t.insert(&[kw(Keyword::Select), var(), kw(Keyword::Where)], 1);
        // root + SELECT + x + FROM + WHERE = 5 nodes
        assert_eq!(t.node_count(), 5);
    }

    #[test]
    fn leaves_store_structure_ids() {
        let mut t = Trie::new(2);
        t.insert(&[kw(Keyword::Select), var()], 42);
        let Some(c1) = t.children(0).next() else {
            panic!("root must have a child after insert");
        };
        let Some(c2) = t.children(c1).next() else {
            panic!("depth-1 node must have a child after insert");
        };
        assert_eq!(t.structure(c2), 42);
        assert_eq!(t.structure(c1), NONE);
    }

    #[test]
    fn children_iterate_in_insertion_order() {
        let mut t = Trie::new(1);
        t.insert(&[kw(Keyword::Where)], 0);
        t.insert(&[kw(Keyword::Select)], 1);
        t.insert(&[var()], 2);
        let toks: Vec<StructTokId> = t.children(0).map(|c| t.token(c)).collect();
        assert_eq!(toks, vec![kw(Keyword::Where), kw(Keyword::Select), var()]);
    }

    #[test]
    fn empty_trie() {
        let t = Trie::new(5);
        assert!(t.is_empty());
        assert_eq!(t.children(0).count(), 0);
    }

    #[test]
    fn view_matches_owned() {
        // Build an owned trie, serialize its planes by hand, and check the
        // zero-copy view is observationally identical node for node —
        // including the content id, which for the view is the serialized
        // segment checksum and for the owned trie is streamed on demand.
        let mut t = Trie::new(2);
        t.insert(&[kw(Keyword::Select), var()], 7);
        t.insert(&[kw(Keyword::Where), var()], 8);
        t.insert(&[kw(Keyword::Where), kw(Keyword::From)], 9);
        let n = t.node_count();
        let mut token = Vec::new();
        let mut fc = Vec::new();
        let mut ns = Vec::new();
        let mut st = Vec::new();
        for i in 0..n as u32 {
            token.push(t.token(i).0);
            fc.extend_from_slice(&t.first_child(i).to_le_bytes());
            ns.extend_from_slice(&t.next_sibling(i).to_le_bytes());
            st.extend_from_slice(&t.structure(i).to_le_bytes());
        }
        let mut serialized = token.clone();
        while !serialized.len().is_multiple_of(4) {
            serialized.push(0);
        }
        serialized.extend_from_slice(&fc);
        serialized.extend_from_slice(&ns);
        serialized.extend_from_slice(&st);
        let content = crate::content::checksum64(&serialized);
        assert_eq!(t.content_id(), content, "owned content id = plane checksum");
        let v = Trie::from_view(
            2,
            n,
            content,
            Bytes::from(token),
            Bytes::from(fc),
            Bytes::from(ns),
            Bytes::from(st),
        );
        assert_eq!(v.content_id(), t.content_id());
        assert!(v.view_planes().is_some() && t.view_planes().is_none());
        assert_eq!(v.node_count(), n);
        assert!(!v.is_empty());
        for i in 0..n as u32 {
            assert_eq!(v.node(i), t.node(i), "node {i}");
        }
        let walk = |t: &Trie| -> Vec<u32> {
            let mut out = Vec::new();
            let mut stack = vec![0u32];
            while let Some(x) = stack.pop() {
                out.push(x);
                stack.extend(t.children(x));
            }
            out
        };
        assert_eq!(walk(&v), walk(&t));
    }
}
