//! Content hashing shared by persistence and generation derivation.
//!
//! Two FNV-1a-64 flavors live here, with one contract between them:
//!
//! - [`checksum64`] / [`StreamChecksum`] — the persisted-format checksum:
//!   FNV-1a folded over little-endian 64-bit words with the byte length
//!   premixed (so zero-padded tails still bind). `StreamChecksum` is the
//!   incremental form and produces **bit-identical** digests to the
//!   one-shot function for the same byte stream; an owned trie can hash
//!   its would-be serialization without materializing it, and the digest
//!   equals the checksum a persisted image records for that segment.
//! - [`WordFold`] — a plain word-level fold for composing *content ids*
//!   (the arena generation rolls up per-segment ids plus the structure
//!   planes). No length premix; callers frame every variable-length field
//!   with an explicit length word, which is what makes the composed
//!   stream unambiguous.
//!
//! The persisted segment checksum doubles as the segment's content id:
//! a zero-copy loader reuses the (already verified) recorded checksum
//! instead of rehashing multi-megabyte planes, and a built index computes
//! the same value via `StreamChecksum` — so built, loaded, and
//! delta-reused segments all agree on identity by construction.

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a-64 folded over little-endian 64-bit words (8× fewer multiplies
/// than the byte-at-a-time reference on the multi-megabyte node planes),
/// with the byte length mixed in so zero-padded tails still bind.
pub(crate) fn checksum64(data: &[u8]) -> u64 {
    let mut h = FNV_OFFSET ^ (data.len() as u64).wrapping_mul(FNV_PRIME);
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        if let &[a, b, c0, d, e, f, g, i] = c {
            h ^= u64::from_le_bytes([a, b, c0, d, e, f, g, i]);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Incremental [`checksum64`]: construct with the total byte length the
/// stream will have, feed it in arbitrary pieces, and `finish` yields the
/// identical digest the one-shot function computes over the concatenation.
pub(crate) struct StreamChecksum {
    h: u64,
    buf: [u8; 8],
    fill: usize,
}

impl StreamChecksum {
    /// `total_len` must equal the total number of bytes subsequently fed
    /// through [`StreamChecksum::update`]; the length premix is what binds
    /// zero-padded tails, exactly as in [`checksum64`].
    pub(crate) fn new(total_len: usize) -> StreamChecksum {
        StreamChecksum {
            h: FNV_OFFSET ^ (total_len as u64).wrapping_mul(FNV_PRIME),
            buf: [0u8; 8],
            fill: 0,
        }
    }

    #[inline]
    fn fold(&mut self, word: [u8; 8]) {
        self.h ^= u64::from_le_bytes(word);
        self.h = self.h.wrapping_mul(FNV_PRIME);
    }

    pub(crate) fn update(&mut self, mut bytes: &[u8]) {
        if self.fill > 0 {
            let need = (8 - self.fill).min(bytes.len());
            self.buf[self.fill..self.fill + need].copy_from_slice(&bytes[..need]);
            self.fill += need;
            bytes = &bytes[need..];
            if self.fill == 8 {
                let word = self.buf;
                self.fold(word);
                self.fill = 0;
            } else {
                return;
            }
        }
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            if let &[a, b, c0, d, e, f, g, i] = c {
                self.fold([a, b, c0, d, e, f, g, i]);
            }
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.fill = rem.len();
    }

    pub(crate) fn update_u32_le(&mut self, v: u32) {
        self.update(&v.to_le_bytes());
    }

    pub(crate) fn finish(mut self) -> u64 {
        if self.fill > 0 {
            for b in &mut self.buf[self.fill..] {
                *b = 0;
            }
            let word = self.buf;
            self.fold(word);
        }
        self.h
    }
}

/// Word-level FNV-1a fold for composing content ids out of framed fields.
/// Unlike the checksum flavor there is no length premix — the caller frames
/// every variable-length field with an explicit count word instead.
pub(crate) struct WordFold {
    h: u64,
}

impl WordFold {
    /// A fold seeded with a domain-separation tag so differently-shaped
    /// streams can never collide by construction order alone.
    pub(crate) fn new(tag: u64) -> WordFold {
        let mut f = WordFold { h: FNV_OFFSET };
        f.word(tag);
        f
    }

    #[inline]
    pub(crate) fn word(&mut self, w: u64) {
        self.h ^= w;
        self.h = self.h.wrapping_mul(FNV_PRIME);
    }

    pub(crate) fn finish(self) -> u64 {
        self.h
    }
}

/// Fx-style non-cryptographic hasher (rotate–xor–multiply per word) for
/// duplicate-structure sweeps. The keys come from an image being validated
/// or a delta being applied, not from an attacker-controlled hash-flooding
/// surface, so trading SipHash's flood resistance for an order of magnitude
/// on a million short keys is the right call here — and only here.
#[derive(Default)]
pub(crate) struct FxHasher(u64);

impl std::hash::Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            if let &[a, b, c0, d, e, f, g, h] = c {
                let word = u64::from_le_bytes([a, b, c0, d, e, f, g, h]);
                self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
            }
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            let word = u64::from_le_bytes(tail) ^ (rem.len() as u64) << 56;
            self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// [`std::hash::BuildHasher`] for [`FxHasher`].
#[derive(Clone, Default)]
pub(crate) struct BuildFx;

impl std::hash::BuildHasher for BuildFx {
    type Hasher = FxHasher;

    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_checksum_matches_one_shot() {
        // Deterministic pseudo-random byte strings fed through every split
        // pattern that exercises the carry buffer: byte-at-a-time, odd
        // chunks, one shot, and u32-sized pieces.
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        for len in [0usize, 1, 3, 7, 8, 9, 12, 13, 64, 257, 1024] {
            let data: Vec<u8> = (0..len).map(|_| next()).collect();
            let expect = checksum64(&data);

            let mut s = StreamChecksum::new(len);
            for b in &data {
                s.update(std::slice::from_ref(b));
            }
            assert_eq!(s.finish(), expect, "byte-at-a-time len={len}");

            let mut s = StreamChecksum::new(len);
            for chunk in data.chunks(5) {
                s.update(chunk);
            }
            assert_eq!(s.finish(), expect, "chunks-of-5 len={len}");

            let mut s = StreamChecksum::new(len);
            s.update(&data);
            assert_eq!(s.finish(), expect, "one-shot len={len}");
        }
    }

    #[test]
    fn stream_checksum_u32_helper_is_le() {
        let mut s = StreamChecksum::new(8);
        s.update_u32_le(0x0403_0201);
        s.update_u32_le(0x0807_0605);
        assert_eq!(s.finish(), checksum64(&[1, 2, 3, 4, 5, 6, 7, 8]));
    }

    #[test]
    fn word_fold_separates_tags_and_is_deterministic() {
        let mut a = WordFold::new(1);
        a.word(42);
        let mut b = WordFold::new(2);
        b.word(42);
        assert_ne!(a.finish(), b.finish());
        let mut c = WordFold::new(1);
        c.word(42);
        let mut d = WordFold::new(1);
        d.word(42);
        assert_eq!(c.finish(), d.finish());
    }
}
