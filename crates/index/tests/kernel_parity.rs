//! Scalar-vs-SoA kernel parity: the branchless structure-of-arrays DP
//! kernel must be observationally identical to the scalar reference — same
//! hits, same work counters — for any query, at any thread count, under
//! every accuracy-preserving configuration.
//!
//! This suite is the contract the `kernel-parity` CI job enforces in release
//! mode (where autovectorization actually fires), with the proptest case
//! count raised via `PROPTEST_CASES`.

use proptest::prelude::*;
use speakql_editdist::Weights;
use speakql_grammar::{GeneratorConfig, StructTokId, STRUCT_ALPHABET};
use speakql_index::{DpKernel, SearchConfig, StructureIndex};
use std::sync::OnceLock;

fn small_index() -> &'static StructureIndex {
    static IDX: OnceLock<StructureIndex> = OnceLock::new();
    IDX.get_or_init(|| StructureIndex::from_grammar(&GeneratorConfig::small(), Weights::PAPER))
}

fn arb_masked() -> impl Strategy<Value = Vec<StructTokId>> {
    prop::collection::vec((0..STRUCT_ALPHABET as u8).prop_map(StructTokId), 0..16)
}

/// Proptest case count: `PROPTEST_CASES` when set (the kernel-parity CI job
/// raises it), a debug-friendly default otherwise. Each case already runs a
/// dozen full searches, so the default stays modest.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]
    /// Sequential search: hits AND every work counter match between the
    /// kernels. Both kernels advance exactly the same columns in the same
    /// order, so `nodes_visited`, `cells_evaluated`, and the BDB trie
    /// counters are equal, not merely close.
    #[test]
    fn scalar_and_soa_agree_exactly_sequential(masked in arb_masked()) {
        let idx = small_index();
        for k in [1usize, 5] {
            for bdb in [true, false] {
                let base = SearchConfig { k, bdb, ..SearchConfig::default() };
                let (scalar_hits, scalar_stats) = idx.search_with_stats(
                    &masked, &base.with_kernel(DpKernel::Scalar));
                let (soa_hits, soa_stats) = idx.search_with_stats(
                    &masked, &base.with_kernel(DpKernel::Soa));
                prop_assert_eq!(&scalar_hits, &soa_hits, "hits (k={}, bdb={})", k, bdb);
                prop_assert_eq!(scalar_stats, soa_stats, "stats (k={}, bdb={})", k, bdb);
                // Auto must resolve to one of the two certified kernels.
                let (auto_hits, auto_stats) = idx.search_with_stats(
                    &masked, &base.with_kernel(DpKernel::Auto));
                prop_assert_eq!(&auto_hits, &scalar_hits, "auto hits (k={}, bdb={})", k, bdb);
                prop_assert_eq!(auto_stats, scalar_stats, "auto stats (k={}, bdb={})", k, bdb);
            }
        }
    }

    /// Parallel search: hits stay byte-identical across kernels at every
    /// thread count (counters are schedule-dependent in parallel mode, so
    /// only the results are compared).
    #[test]
    fn kernels_agree_across_thread_counts(masked in arb_masked()) {
        let idx = small_index();
        let reference = idx.search(
            &masked,
            &SearchConfig::top_k(5).with_kernel(DpKernel::Scalar),
        );
        for threads in [1usize, 2, 8] {
            for kernel in [DpKernel::Scalar, DpKernel::Soa, DpKernel::Auto] {
                let cfg = SearchConfig::top_k(5)
                    .with_threads(threads)
                    .with_kernel(kernel);
                let hits = idx.search(&masked, &cfg);
                prop_assert_eq!(
                    &hits, &reference,
                    "threads={} kernel={:?}", threads, kernel
                );
            }
        }
    }

    /// Both kernels remain exact against the brute-force scan.
    #[test]
    fn both_kernels_match_brute_force(masked in arb_masked()) {
        let idx = small_index();
        let scan = idx.scan(&masked, 5);
        for kernel in [DpKernel::Scalar, DpKernel::Soa] {
            let hits = idx.search(&masked, &SearchConfig::top_k(5).with_kernel(kernel));
            prop_assert_eq!(&hits, &scan, "kernel={:?}", kernel);
        }
    }

    /// DAP runs on the scalar kernel regardless of the requested one; the
    /// kernel knob must not change DAP's (approximate) answers either.
    #[test]
    fn dap_is_kernel_invariant(masked in arb_masked()) {
        let idx = small_index();
        let dap = SearchConfig { dap: true, ..SearchConfig::default() };
        let (scalar_hits, scalar_stats) =
            idx.search_with_stats(&masked, &dap.with_kernel(DpKernel::Scalar));
        let (soa_hits, soa_stats) =
            idx.search_with_stats(&masked, &dap.with_kernel(DpKernel::Soa));
        prop_assert_eq!(scalar_hits, soa_hits);
        prop_assert_eq!(scalar_stats, soa_stats);
    }
}

/// A query outside the u16 lane envelope (Proposition 1 ceiling above
/// `u16::MAX`) silently falls back to the scalar kernel even when SoA is
/// requested — same hits, no panic, no saturation artifacts.
#[test]
fn oversized_query_falls_back_to_scalar() {
    let idx = small_index();
    let masked = vec![StructTokId::VAR; 6000];
    let base = SearchConfig::default();
    let (scalar_hits, scalar_stats) =
        idx.search_with_stats(&masked, &base.with_kernel(DpKernel::Scalar));
    let (soa_hits, soa_stats) = idx.search_with_stats(&masked, &base.with_kernel(DpKernel::Soa));
    assert_eq!(scalar_hits, soa_hits);
    assert_eq!(scalar_stats, soa_stats);
    assert!(!soa_hits.is_empty());
}
