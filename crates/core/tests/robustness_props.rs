//! Robustness property tests (PR 5): for *any* transcript — printable
//! ASCII, arbitrary Unicode, pathological whitespace — the engine returns
//! `Ok` or a typed `Err` and never panics, and the classification is
//! identical across thread counts {1, 2, 8} and with the skeleton cache on
//! or off. Ordinary text must never surface as a contained worker panic:
//! `WorkerPanic` is reserved for genuine pipeline faults.

use proptest::prelude::*;
use speakql_core::{SpeakQl, SpeakQlConfig, SpeakQlError, SpeakQlResult, Transcription};
use speakql_db::{Column, Database, Table, TableSchema, Value, ValueType};
use speakql_index::StructureIndex;
use std::sync::{Arc, OnceLock};

fn toy_db() -> Database {
    let mut db = Database::new("robust");
    let mut emp = Table::new(TableSchema::new(
        "Employees",
        vec![
            Column::new("FirstName", ValueType::Text),
            Column::new("Salary", ValueType::Int),
        ],
    ));
    emp.push_row(vec![Value::Text("John".into()), Value::Int(70000)]);
    emp.push_row(vec![Value::Text("Perla".into()), Value::Int(82000)]);
    db.add_table(emp);
    db
}

/// Engines for every (threads, cache) combination under test, sharing one
/// index so construction cost is paid once per process.
fn engines() -> &'static Vec<SpeakQl> {
    static E: OnceLock<Vec<SpeakQl>> = OnceLock::new();
    E.get_or_init(|| {
        let db = toy_db();
        let base = SpeakQlConfig::small().with_max_transcript_words(64);
        let index = Arc::new(StructureIndex::from_grammar(&base.generator, base.weights));
        let mut engines = Vec::new();
        for threads in [1usize, 2, 8] {
            for cache in [0usize, 32] {
                engines.push(SpeakQl::with_index(
                    &db,
                    Arc::clone(&index),
                    base.clone()
                        .with_threads(threads)
                        .with_cache_capacity(cache),
                ));
            }
        }
        engines
    })
}

/// Outcome fingerprint: the best SQL on success, the error class on failure.
fn outcome(r: &SpeakQlResult<Transcription>) -> Result<Option<String>, &'static str> {
    match r {
        Ok(t) => Ok(t.best_sql().map(str::to_string)),
        Err(e) => Err(e.class()),
    }
}

/// The typed-error contract for ordinary (non-injected) input: a result is
/// acceptable iff it is `Ok` or a *classified validation* error — never a
/// contained panic.
fn assert_contract(transcript: &str, r: &SpeakQlResult<Transcription>) {
    match r {
        Ok(t) => assert!(
            !t.candidates.is_empty(),
            "Ok with zero candidates for {transcript:?}"
        ),
        Err(SpeakQlError::EmptyTranscript) => assert!(
            transcript.split_whitespace().next().is_none(),
            "EmptyTranscript for wordy input {transcript:?}"
        ),
        Err(SpeakQlError::TranscriptTooLong { words, max }) => {
            assert_eq!(*words, transcript.split_whitespace().count());
            assert!(words > max, "TooLong under the cap for {transcript:?}");
        }
        Err(e) => panic!("unexpected error class {} for {transcript:?}", e.class()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Printable-ASCII transcripts: every engine configuration agrees on
    /// the outcome, and the outcome honors the typed-error contract.
    #[test]
    fn ascii_transcripts_classify_identically_everywhere(
        transcript in "[ -~]{0,120}",
    ) {
        let engines = engines();
        let reference = engines[0].transcribe(&transcript);
        assert_contract(&transcript, &reference);
        for engine in &engines[1..] {
            let r = engine.transcribe(&transcript);
            prop_assert_eq!(
                outcome(&reference),
                outcome(&r),
                "divergent outcome for {:?}",
                transcript
            );
        }
    }

    /// Arbitrary Unicode (multibyte, combining marks, astral planes) never
    /// panics and never misclassifies as a worker panic.
    #[test]
    fn unicode_transcripts_never_panic(transcript in "\\PC{0,40}") {
        for engine in engines() {
            assert_contract(&transcript, &engine.transcribe(&transcript));
        }
    }

    /// Word-count validation is exact at the cap boundary for adversarial
    /// whitespace mixes.
    #[test]
    fn word_cap_is_exact_under_weird_whitespace(
        words in prop::collection::vec("[a-z]{1,6}", 0..80),
        seps in prop::collection::vec(prop_oneof![
            Just(" "), Just("\t"), Just("\n"), Just("\u{00a0}"), Just("  ")
        ], 0..80),
    ) {
        let mut transcript = String::new();
        for (i, w) in words.iter().enumerate() {
            transcript.push_str(w);
            transcript.push_str(seps.get(i).copied().unwrap_or(" "));
        }
        let r = engines()[0].transcribe(&transcript);
        if words.is_empty() {
            prop_assert!(matches!(r, Err(SpeakQlError::EmptyTranscript)));
        } else if words.len() > 64 {
            prop_assert!(
                matches!(&r, Err(SpeakQlError::TranscriptTooLong { words: w, max: 64 }) if *w == words.len())
            );
        } else {
            prop_assert!(r.is_ok(), "unexpected error for {} words", words.len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Batch containment under property inputs: a batch of arbitrary ASCII
    /// transcripts returns one slot per input, in order, each slot matching
    /// the sequential outcome.
    #[test]
    fn batch_slots_match_sequential_outcomes(
        transcripts in prop::collection::vec("[ -~]{0,60}", 1..12),
    ) {
        let engines = engines();
        let parallel = &engines[engines.len() - 1]; // 8 threads, cache on
        let refs: Vec<&str> = transcripts.iter().map(String::as_str).collect();
        let batch = parallel.transcribe_batch(&refs);
        prop_assert_eq!(batch.len(), refs.len());
        for (t, slot) in refs.iter().zip(&batch) {
            let sequential = engines[0].transcribe(t);
            prop_assert_eq!(
                outcome(&sequential),
                outcome(slot),
                "batch slot diverged for {:?}",
                t
            );
        }
    }
}
