//! End-to-end kernel parity: a SpeakQL engine running the branchless SoA DP
//! kernel must produce byte-identical transcriptions to one running the
//! scalar reference kernel — same candidates, same SQL, same alternatives —
//! for any transcript, at any thread count, with the skeleton cache on or
//! off. The kernel knob is pure mechanism; nothing downstream may observe
//! it.

use proptest::prelude::*;
use speakql_core::{Candidate, SpeakQl, SpeakQlConfig, SpeakQlError, SpeakQlResult, Transcription};
use speakql_db::{Column, Database, Table, TableSchema, Value, ValueType};
use speakql_index::{DpKernel, StructureIndex};
use std::sync::{Arc, OnceLock};

const WORDS: &[&str] = &[
    "select",
    "salary",
    "from",
    "employees",
    "where",
    "first",
    "name",
    "equals",
    "john",
    "greater",
    "than",
    "70000",
    "and",
    "sum",
    "open",
    "parenthesis",
    "close",
    "star",
    "sales",
    "employers",
    "wear",
];

fn toy_db() -> Database {
    let mut db = Database::new("toy");
    let mut emp = Table::new(TableSchema::new(
        "Employees",
        vec![
            Column::new("FirstName", ValueType::Text),
            Column::new("Salary", ValueType::Int),
        ],
    ));
    emp.push_row(vec![Value::Text("John".into()), Value::Int(70000)]);
    emp.push_row(vec![Value::Text("Perla".into()), Value::Int(80000)]);
    db.add_table(emp);
    db
}

/// One structure index shared by every engine in this file, so the kernels
/// search the exact same arena (and exercise the shared workspace pools).
fn shared_index() -> Arc<StructureIndex> {
    static INDEX: OnceLock<Arc<StructureIndex>> = OnceLock::new();
    INDEX
        .get_or_init(|| {
            let cfg = SpeakQlConfig::small();
            Arc::new(StructureIndex::from_grammar(&cfg.generator, cfg.weights))
        })
        .clone()
}

fn view(r: &SpeakQlResult<Transcription>) -> Result<&[Candidate], &SpeakQlError> {
    r.as_ref().map(|t| t.candidates.as_slice())
}

fn transcripts_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        proptest::collection::vec(0..WORDS.len(), 1..10)
            .prop_map(|idxs| idxs.iter().map(|&i| WORDS[i]).collect::<Vec<_>>().join(" ")),
        1..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Scalar vs SoA engines agree byte-for-byte across threads {1, 2, 8} ×
    /// cache {off, on}, including a warm second pass where the cached engine
    /// answers from memoized skeletons the *other* kernel could have filled.
    #[test]
    fn soa_engine_equals_scalar_engine(transcripts in transcripts_strategy()) {
        let db = toy_db();
        let batch: Vec<&str> = transcripts
            .iter()
            .chain(transcripts.iter())
            .map(String::as_str)
            .collect();
        for &threads in &[1usize, 2, 8] {
            for &cache in &[0usize, 64] {
                let mut scalar_cfg = SpeakQlConfig::small()
                    .with_threads(threads)
                    .with_cache_capacity(cache);
                scalar_cfg.search.kernel = DpKernel::Scalar;
                let mut soa_cfg = scalar_cfg.clone();
                soa_cfg.search.kernel = DpKernel::Soa;

                let scalar = SpeakQl::with_index(&db, shared_index(), scalar_cfg);
                let soa = SpeakQl::with_index(&db, shared_index(), soa_cfg);

                let expect = scalar.transcribe_batch(&batch);
                let cold = soa.transcribe_batch(&batch);
                let warm = soa.transcribe_batch(&batch);
                for ((e, c), w) in expect.iter().zip(&cold).zip(&warm) {
                    prop_assert_eq!(view(e), view(c),
                        "cold diverged (threads={}, cache={})", threads, cache);
                    prop_assert_eq!(view(e), view(w),
                        "warm diverged (threads={}, cache={})", threads, cache);
                }
            }
        }
    }
}
