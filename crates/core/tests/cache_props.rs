//! Skeleton-cache property tests: an engine with the cross-query cache
//! enabled must be observationally identical to an uncached engine — same
//! candidates, byte for byte — for any transcript, at any engine thread
//! count, with BDB pruning on or off, and under eviction churn.
//!
//! Both engines share one [`StructureIndex`] via [`SpeakQl::with_index`] so
//! the comparison isolates the cache itself.

use proptest::prelude::*;
use speakql_core::{
    Candidate, CounterId, SpeakQl, SpeakQlConfig, SpeakQlError, SpeakQlResult, Transcription,
};
use speakql_db::{Column, Database, Table, TableSchema, Value, ValueType};
use speakql_index::StructureIndex;
use std::sync::{Arc, OnceLock};

/// Word pool the transcript generator draws from: keywords, schema terms,
/// misrecognitions, and literals — enough variety to produce distinct
/// masked skeletons and phonetic votes.
const WORDS: &[&str] = &[
    "select",
    "salary",
    "from",
    "employees",
    "where",
    "first",
    "name",
    "equals",
    "john",
    "greater",
    "than",
    "70000",
    "and",
    "sum",
    "open",
    "parenthesis",
    "close",
    "star",
    "employee",
    "number",
    "in",
    "salaries",
    "sales",
    "employers",
    "wear",
];

fn toy_db() -> Database {
    let mut db = Database::new("toy");
    let mut emp = Table::new(TableSchema::new(
        "Employees",
        vec![
            Column::new("EmployeeNumber", ValueType::Int),
            Column::new("FirstName", ValueType::Text),
            Column::new("Salary", ValueType::Int),
        ],
    ));
    emp.push_row(vec![
        Value::Int(1),
        Value::Text("John".into()),
        Value::Int(70000),
    ]);
    emp.push_row(vec![
        Value::Int(2),
        Value::Text("Perla".into()),
        Value::Int(80000),
    ]);
    db.add_table(emp);
    let mut sal = Table::new(TableSchema::new(
        "Salaries",
        vec![
            Column::new("EmployeeNumber", ValueType::Int),
            Column::new("salary", ValueType::Int),
        ],
    ));
    sal.push_row(vec![Value::Int(1), Value::Int(70000)]);
    db.add_table(sal);
    db
}

/// One structure index shared by every engine in this file, so cached and
/// uncached runs search the exact same arena.
fn shared_index() -> Arc<StructureIndex> {
    static INDEX: OnceLock<Arc<StructureIndex>> = OnceLock::new();
    INDEX
        .get_or_init(|| {
            let cfg = SpeakQlConfig::small();
            Arc::new(StructureIndex::from_grammar(&cfg.generator, cfg.weights))
        })
        .clone()
}

/// Comparable view of a transcription result: the candidate list on
/// success, the typed error otherwise.
fn view(r: &SpeakQlResult<Transcription>) -> Result<&[Candidate], &SpeakQlError> {
    r.as_ref().map(|t| t.candidates.as_slice())
}

fn transcripts_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        proptest::collection::vec(0..WORDS.len(), 1..10)
            .prop_map(|idxs| idxs.iter().map(|&i| WORDS[i]).collect::<Vec<_>>().join(" ")),
        1..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For every engine thread count in {1, 2, 8} and BDB on/off, a cached
    /// engine returns byte-identical candidates to an uncached one — on the
    /// first (miss) pass, and again on a fully warm second pass where every
    /// skeleton resolves from the cache.
    #[test]
    fn cached_equals_uncached_across_threads_and_bdb(transcripts in transcripts_strategy()) {
        let db = toy_db();
        let batch: Vec<&str> = transcripts
            .iter()
            .chain(transcripts.iter())
            .map(String::as_str)
            .collect();
        for &threads in &[1usize, 2, 8] {
            for &bdb in &[true, false] {
                let mut cfg = SpeakQlConfig::small()
                    .with_threads(threads)
                    .with_observability(true);
                cfg.search.bdb = bdb;
                let uncached = SpeakQl::with_index(&db, shared_index(), cfg.clone());
                let cached =
                    SpeakQl::with_index(&db, shared_index(), cfg.with_cache_capacity(64));

                let expect = uncached.transcribe_batch(&batch);
                let first = cached.transcribe_batch(&batch);
                let warm = cached.transcribe_batch(&batch);
                for ((e, f), w) in expect.iter().zip(&first).zip(&warm) {
                    prop_assert_eq!(view(e), view(f),
                        "cold cache diverged (threads={}, bdb={})", threads, bdb);
                    prop_assert_eq!(view(e), view(w),
                        "warm cache diverged (threads={}, bdb={})", threads, bdb);
                }
                // The warm pass must actually have been served by the cache.
                let hits = cached.report().counter(CounterId::CacheSkeletonHits);
                prop_assert!(hits > 0, "no cache hits (threads={}, bdb={})", threads, bdb);
            }
        }
    }
}

/// A capacity-2 cache thrashed by four distinct skeletons keeps evicting and
/// re-filling, and every answer — hit, miss, or post-eviction recompute —
/// still matches the uncached engine exactly.
#[test]
fn eviction_churn_preserves_results() {
    // Four structurally distinct transcripts: their masked skeletons differ,
    // so cycling them through a 2-entry cache forces continual eviction.
    let queries = [
        "select salary from employees",
        "select salary from employees where first name equals john",
        "select salary from employees where salary greater than 70000 and first name equals john",
        "select sum open parenthesis salary close parenthesis from employees",
    ];
    let db = toy_db();
    let cfg = SpeakQlConfig::small()
        .with_threads(1)
        .with_observability(true);
    let uncached = SpeakQl::with_index(&db, shared_index(), cfg.clone());
    let cached = SpeakQl::with_index(&db, shared_index(), cfg.with_cache_capacity(2));

    for round in 0..3 {
        for q in &queries {
            let e = uncached.transcribe(q);
            let c = cached.transcribe(q);
            assert_eq!(
                view(&e),
                view(&c),
                "round {round}: cached result diverged for {q:?}"
            );
        }
    }

    let report = cached.report();
    let evictions = report.counter(CounterId::CacheSkeletonEvictions);
    let misses = report.counter(CounterId::CacheSkeletonMisses);
    assert!(
        evictions > 0,
        "four skeletons cycling through a 2-entry cache must evict (got {evictions})"
    );
    assert!(
        misses >= queries.len() as u64,
        "each distinct skeleton must miss at least once (got {misses})"
    );
}

/// Regression for the rebuild-the-world invalidation bug: generations used
/// to come from a process-global counter, so an engine over a *byte-identical
/// reload* of the same index image keyed the shared cache differently and
/// started cold. Content-derived generations make the reloaded engine hit
/// the warm entries its predecessor populated.
#[test]
fn reload_of_same_bytes_preserves_cache_hits() {
    let db = toy_db();
    let cfg = SpeakQlConfig::small().with_threads(1);
    let query = "select salary from employees where first name equals john";
    let bytes = speakql_index::to_bytes(&shared_index()).expect("serialize index");

    let cache = Arc::new(speakql_core::SkeletonCache::new(64));
    let recorder = speakql_core::Recorder::enabled();

    let first_load = Arc::new(speakql_index::from_shared(bytes.clone()).expect("load index"));
    let engine = SpeakQl::with_shared_cache(
        &db,
        first_load,
        cache.clone(),
        recorder.clone(),
        cfg.clone(),
    );
    let expect = engine.transcribe(query);
    assert!(
        !cache.is_empty(),
        "first transcription must populate the shared cache"
    );
    let hits_before = recorder.counter(CounterId::CacheSkeletonHits);
    drop(engine);

    // "Restart": a fresh load of the same bytes, a fresh engine, the
    // surviving cache.
    let second_load = Arc::new(speakql_index::from_shared(bytes).expect("reload index"));
    let reloaded = SpeakQl::with_shared_cache(&db, second_load, cache, recorder.clone(), cfg);
    let warm = reloaded.transcribe(query);
    assert_eq!(view(&expect), view(&warm));
    assert!(
        recorder.counter(CounterId::CacheSkeletonHits) > hits_before,
        "reloaded engine must be served by the warm cache, not recompute"
    );
}

/// A delta'd index behind a cached engine is observationally identical to a
/// full rebuild over its live structures behind an uncached engine — and the
/// delta'd generation differs from the base's, so the shared cache never
/// serves pre-delta hits against the post-delta arena.
#[test]
fn delta_and_rebuild_engines_agree_with_cache_on_and_off() {
    let db = toy_db();
    let base = shared_index();
    let victims: Vec<u32> = (0..40).map(|i| i * 7).collect();
    let delta = speakql_index::IndexDelta::new().remove_structures(victims.iter().copied());
    let (delta_idx, stats) = base.apply_delta(&delta).expect("apply delta");
    assert!(stats.segments_reused > 0);
    assert_ne!(delta_idx.generation(), base.generation());

    let live: Vec<_> = (0..delta_idx.arena_len() as u32)
        .filter(|&id| !delta_idx.is_removed(id))
        .map(|id| delta_idx.structure(id))
        .collect();
    let rebuilt_idx = StructureIndex::build(live, delta_idx.weights());

    let queries = [
        "select salary from employees",
        "select salary from employees where first name equals john",
        "select sum open parenthesis salary close parenthesis from employees",
    ];
    for cache_capacity in [0usize, 64] {
        let cfg = SpeakQlConfig::small()
            .with_threads(1)
            .with_cache_capacity(cache_capacity);
        let on_delta = SpeakQl::with_index(&db, Arc::new(delta_idx.clone()), cfg.clone());
        let on_rebuilt = SpeakQl::with_index(&db, Arc::new(rebuilt_idx.clone()), cfg);
        for round in 0..2 {
            for q in &queries {
                let d = on_delta.transcribe(q);
                let r = on_rebuilt.transcribe(q);
                assert_eq!(
                    view(&d),
                    view(&r),
                    "round {round}, cache={cache_capacity}: delta'd engine diverged for {q:?}"
                );
            }
        }
    }
}
