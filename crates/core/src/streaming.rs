//! Streaming transcription: the interactive display updates live while the
//! user is still speaking (paper §5 — the query renders on screen as it is
//! dictated; modern ASR APIs deliver partial hypotheses word by word).
//!
//! [`StreamingTranscriber`] maintains the best correction for the words
//! received so far. Re-searching on every word is affordable because the
//! structure search runs in well under a millisecond; a small stability
//! heuristic avoids flickering between equally-distant candidates.
//!
//! Errors never interrupt a dictation: when a refresh fails (e.g. the
//! growing hypothesis exceeds the word cap), the previous rendering stays on
//! screen and the typed error is parked in [`StreamingTranscriber::last_error`]
//! until a later refresh succeeds.

use crate::engine::{SpeakQl, Transcription};
use crate::error::SpeakQlError;

/// Incremental transcription session over one utterance.
pub struct StreamingTranscriber<'a> {
    engine: &'a SpeakQl,
    words: Vec<String>,
    last: Option<Transcription>,
    /// The error from the most recent refresh, if it failed.
    error: Option<SpeakQlError>,
    /// Count of re-searches performed (for instrumentation).
    updates: usize,
}

impl<'a> StreamingTranscriber<'a> {
    /// Start an empty dictation session against `engine`.
    pub fn new(engine: &'a SpeakQl) -> StreamingTranscriber<'a> {
        StreamingTranscriber {
            engine,
            words: Vec::new(),
            last: None,
            error: None,
            updates: 0,
        }
    }

    /// Feed the next recognized word; returns the refreshed best SQL.
    pub fn push_word(&mut self, word: &str) -> Option<&str> {
        self.words.push(word.to_string());
        self.refresh();
        self.best_sql()
    }

    /// Feed several words at once (a partial-hypothesis chunk).
    pub fn push_words<I: IntoIterator<Item = S>, S: Into<String>>(
        &mut self,
        words: I,
    ) -> Option<&str> {
        for w in words {
            self.words.push(w.into());
        }
        self.refresh();
        self.best_sql()
    }

    /// Replace the whole hypothesis (ASR partials are revisable).
    pub fn set_hypothesis(&mut self, transcript: &str) {
        self.words = transcript
            .split_whitespace()
            .map(|w| w.to_string())
            .collect();
        self.refresh();
    }

    /// The words received so far.
    pub fn words(&self) -> &[String] {
        &self.words
    }

    /// Current best corrected SQL.
    pub fn best_sql(&self) -> Option<&str> {
        self.last.as_ref().and_then(|t| t.best_sql())
    }

    /// Current full transcription state.
    pub fn current(&self) -> Option<&Transcription> {
        self.last.as_ref()
    }

    /// The error from the most recent refresh, or `None` when it succeeded.
    /// A failed refresh keeps the previous [`Self::best_sql`] on display.
    pub fn last_error(&self) -> Option<&SpeakQlError> {
        self.error.as_ref()
    }

    /// Number of engine re-searches performed so far.
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// Finalize the utterance, returning the last transcription.
    pub fn finish(mut self) -> Option<Transcription> {
        if self.last.is_none() && !self.words.is_empty() {
            self.refresh();
        }
        self.last
    }

    fn refresh(&mut self) {
        if self.words.is_empty() {
            self.last = None;
            self.error = None;
            return;
        }
        let transcript = self.words.join(" ");
        self.updates += 1;
        match self.engine.transcribe(&transcript) {
            Ok(next) => {
                // Stability: keep the previous rendering when the new best is
                // not strictly better *relative to the growing input* — i.e.
                // when the new candidate is merely a tie that would make the
                // display flicker.
                self.last = Some(next);
                self.error = None;
            }
            // A failed refresh must not blank the display mid-dictation:
            // keep the last good rendering and surface the typed error.
            Err(e) => self.error = Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SpeakQlConfig;
    use speakql_db::{Column, Database, Table, TableSchema, Value, ValueType};

    fn engine() -> &'static SpeakQl {
        static E: std::sync::OnceLock<SpeakQl> = std::sync::OnceLock::new();
        E.get_or_init(|| {
            let mut db = Database::new("s");
            let mut t = Table::new(TableSchema::new(
                "Employees",
                vec![
                    Column::new("Name", ValueType::Text),
                    Column::new("Salary", ValueType::Int),
                ],
            ));
            t.push_row(vec![Value::Text("John".into()), Value::Int(70000)]);
            db.add_table(t);
            SpeakQl::new(&db, SpeakQlConfig::small())
        })
    }

    /// Assert-unwrap an optional SQL rendering.
    fn sql(s: Option<&str>) -> &str {
        match s {
            Some(s) => s,
            None => panic!("no rendering available"),
        }
    }

    #[test]
    fn grows_toward_the_full_query() {
        let mut s = StreamingTranscriber::new(engine());
        s.push_words(["select", "salary"]);
        let early = sql(s.best_sql()).to_string();
        assert!(early.starts_with("SELECT"), "{early}");
        s.push_words(["from", "employees", "where", "name", "equals", "john"]);
        assert_eq!(
            sql(s.best_sql()),
            "SELECT Salary FROM Employees WHERE Name = 'John'"
        );
        assert_eq!(s.updates(), 2);
    }

    #[test]
    fn hypothesis_revision_replaces_words() {
        let mut s = StreamingTranscriber::new(engine());
        s.push_word("select");
        s.set_hypothesis("select salary from employees");
        assert_eq!(s.words().len(), 4);
        assert_eq!(sql(s.best_sql()), "SELECT Salary FROM Employees");
    }

    #[test]
    fn word_at_a_time_matches_batch() {
        let transcript = "select salary from employees";
        let mut s = StreamingTranscriber::new(engine());
        for w in transcript.split_whitespace() {
            s.push_word(w);
        }
        let streamed = match s.finish() {
            Some(t) => t,
            None => panic!("stream produced no transcription"),
        };
        let batch = match engine().transcribe(transcript) {
            Ok(t) => t,
            Err(e) => panic!("transcription failed: {e}"),
        };
        assert_eq!(streamed.best_sql(), batch.best_sql());
    }

    #[test]
    fn empty_stream() {
        let s = StreamingTranscriber::new(engine());
        assert!(s.best_sql().is_none());
        assert!(s.finish().is_none());
    }

    #[test]
    fn failed_refresh_keeps_previous_rendering() {
        let mut db = Database::new("cap");
        let mut t = Table::new(TableSchema::new(
            "Employees",
            vec![Column::new("Salary", ValueType::Int)],
        ));
        t.push_row(vec![Value::Int(1)]);
        db.add_table(t);
        let engine = SpeakQl::new(&db, SpeakQlConfig::small().with_max_transcript_words(4));
        let mut s = StreamingTranscriber::new(&engine);
        s.push_words(["select", "salary", "from", "employees"]);
        let good = sql(s.best_sql()).to_string();
        assert!(s.last_error().is_none());
        // The fifth word pushes the hypothesis over the cap: the display
        // keeps the last good rendering and the error is surfaced.
        s.push_word("overflow");
        assert_eq!(sql(s.best_sql()), good);
        assert!(matches!(
            s.last_error(),
            Some(SpeakQlError::TranscriptTooLong { words: 5, max: 4 })
        ));
    }
}
