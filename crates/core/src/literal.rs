//! Literal Determination (paper §4, Box 3).
//!
//! Fills the placeholder variables of the best structure using the raw
//! transcription (`TransOut`) and the phonetic catalog:
//!
//! 1. **Category assignment** — each placeholder's T/A/V category comes from
//!    the grammar derivation stored with the structure (§4.1).
//! 2. **Transcription segmentation** — a window of non-dictionary tokens is
//!    located for each placeholder, and all sub-token concatenations up to
//!    `window_size` are enumerated as candidate spoken forms (§4.2).
//! 3. **Literal voting** — each enumerated string votes for its phonetically
//!    closest candidate literal; the most-voted literal wins, ties resolved
//!    lexicographically (§4.3, worked examples in App. E.2).

use crate::catalog::PhoneticCatalog;
use parking_lot::Mutex;
use speakql_grammar::{in_dictionaries, LitCategory, Structure};
use speakql_observe::{CounterId, Recorder};
use speakql_phonetics::PhoneticIndex;
use std::collections::HashMap;
use std::sync::Arc;

/// One filled placeholder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilledLiteral {
    /// The winning literal, rendered ready for SQL (values quoted).
    pub literal: String,
    /// Runner-up literals by vote count (for top-k display and the SQL
    /// Keyboard's suggestion list).
    pub alternatives: Vec<String>,
    /// The TransOut word window `[begin, end)` this placeholder consumed.
    pub window: (usize, usize),
}

/// Configuration of the literal-determination pass.
#[derive(Debug, Clone, Copy)]
pub struct LiteralConfig {
    /// Maximum number of adjacent tokens concatenated per enumerated string
    /// (`WindowSize` in Box 3).
    pub window_size: usize,
    /// How many alternatives to keep per placeholder.
    pub alternatives: usize,
}

impl Default for LiteralConfig {
    fn default() -> Self {
        LiteralConfig {
            window_size: 3,
            alternatives: 5,
        }
    }
}

/// A per-transcript memo of enumerated window encodings and completed
/// placeholder fills, shared by every candidate of one transcription.
///
/// The enumeration of a window `[begin, end)` depends only on the transcript
/// words, the window size, and the phonetic algorithm — all fixed for the
/// lifetime of one transcription — while the top-k candidates repeatedly
/// land their placeholders on the same few windows. Memoizing by `(begin,
/// end)` means each distinct window is keyed exactly once no matter how many
/// candidates (or candidate-construction workers) consume it; results are
/// identical to recomputing, so filled literals are unaffected.
///
/// The fill memo goes one level higher: the entire voting result of one
/// placeholder is a pure function of its window, its T/A/V/N category, and
/// the governing attribute restricting candidate set B — and the top-k
/// candidates are near-identical structures whose placeholders land on the
/// same `(window, category, governor)` triples over and over. Memoizing the
/// finished [`FilledLiteral`] ingredients skips the whole enumerate-and-vote
/// pass for every repeat, not just the enumeration.
#[derive(Debug, Default)]
pub struct WindowEncodings {
    memo: Mutex<HashMap<(usize, usize), SharedEncodings>>,
    fills: Mutex<HashMap<FillKey, SharedFill>>,
}

/// One window's enumerated `(string, word_count)` encodings, shared between
/// the candidates (and workers) that consume the window.
type SharedEncodings = Arc<Vec<(String, usize)>>;

/// Everything a placeholder fill depends on within one transcription: the
/// window, the category code (`T`/`A`/`V`/`N`), and the governing attribute
/// (which selects candidate set B for values).
type FillKey = (usize, usize, char, Option<String>);

/// One completed fill — `(literal, alternatives, consumed_to)` exactly as
/// `assign_phonetic`/`assign_number` return it.
type SharedFill = Arc<(String, Vec<String>, usize)>;

impl WindowEncodings {
    /// An empty memo for one transcription.
    pub fn new() -> WindowEncodings {
        WindowEncodings::default()
    }

    /// The memoized encodings for `[begin, end)`, computing them with
    /// `compute` on first use. The compute closure runs under the memo lock,
    /// so each window is encoded exactly once even when candidate workers
    /// race — which keeps the `literal.strings_enumerated` counter
    /// deterministic at any thread count.
    fn get_or_compute(
        &self,
        begin: usize,
        end: usize,
        compute: impl FnOnce() -> Vec<(String, usize)>,
    ) -> SharedEncodings {
        self.memo
            .lock()
            .entry((begin, end))
            .or_insert_with(|| Arc::new(compute()))
            .clone()
    }

    /// The memoized fill for `key`, computing it with `compute` on first
    /// use; the `bool` reports whether this was a memo hit. As with the
    /// encodings memo, the compute closure runs under the lock so each
    /// distinct key is voted exactly once — the voting counters and the hit
    /// count stay deterministic at any candidate-worker thread count.
    fn fill_or_compute(
        &self,
        key: FillKey,
        compute: impl FnOnce() -> (String, Vec<String>, usize),
    ) -> (SharedFill, bool) {
        let mut fills = self.fills.lock();
        if let Some(fill) = fills.get(&key) {
            return (fill.clone(), true);
        }
        let fill = Arc::new(compute());
        fills.insert(key, fill.clone());
        (fill, false)
    }
}

/// The Literal Determination component.
#[derive(Debug, Clone)]
pub struct LiteralFinder<'a> {
    catalog: &'a PhoneticCatalog,
    config: LiteralConfig,
    recorder: Recorder,
    encodings: Option<&'a WindowEncodings>,
}

impl<'a> LiteralFinder<'a> {
    /// Build a finder voting literals out of `catalog` under `config`, with
    /// observability off and no shared window-encoding memo.
    pub fn new(catalog: &'a PhoneticCatalog, config: LiteralConfig) -> LiteralFinder<'a> {
        LiteralFinder {
            catalog,
            config,
            recorder: Recorder::disabled(),
            encodings: None,
        }
    }

    /// This finder publishing voting work (`literal.vote_comparisons`,
    /// `literal.strings_enumerated`) into `recorder`. The filled literals
    /// are identical with or without a recorder attached.
    pub fn with_recorder(mut self, recorder: Recorder) -> LiteralFinder<'a> {
        self.recorder = recorder;
        self
    }

    /// This finder reading and filling the shared per-transcript window
    /// memo instead of re-enumerating every window per candidate. The filled
    /// literals are identical with or without a memo attached.
    pub fn with_encodings(mut self, encodings: &'a WindowEncodings) -> LiteralFinder<'a> {
        self.encodings = Some(encodings);
        self
    }

    /// Fill every placeholder of `structure` from `trans_out` (the word
    /// stream after SplChar handling). Box 3's `LiteralFinder`, sequential
    /// windows only (no alignment anchors).
    pub fn fill(&self, trans_out: &[String], structure: &Structure) -> Vec<FilledLiteral> {
        self.fill_with_anchors(trans_out, structure, &vec![None; structure.var_count()])
    }

    /// Box 3's `LiteralFinder` with alignment-derived window anchors: the
    /// search engine's DP alignment tells us which transcript token each
    /// placeholder matched, making the paper's `RightNonLiteral` window
    /// boundary precise when several placeholders share one run of
    /// non-dictionary tokens.
    pub fn fill_aligned(
        &self,
        trans_out: &[String],
        masked: &[speakql_grammar::StructTokId],
        structure: &Structure,
        weights: speakql_editdist::Weights,
    ) -> Vec<FilledLiteral> {
        let anchors = crate::align::align_vars(masked, structure, weights);
        self.fill_with_anchors(trans_out, structure, &anchors)
    }

    fn fill_with_anchors(
        &self,
        trans_out: &[String],
        structure: &Structure,
        anchors: &[Option<usize>],
    ) -> Vec<FilledLiteral> {
        let n = trans_out.len();
        let mut filled: Vec<FilledLiteral> = Vec::with_capacity(structure.var_count());
        let mut running = 0usize;

        for (ph_idx, ph) in structure.placeholders.iter().enumerate() {
            // Jump ahead to this placeholder's alignment anchor, if any.
            if let Some(p) = anchors[ph_idx] {
                if p > running {
                    running = p;
                }
            }
            // Skip dictionary tokens (Box 3 lines 4-6).
            while running < n && in_dictionaries(&trans_out[running]) {
                running += 1;
            }
            let begin = running;
            // The window extends to the next dictionary token (the paper's
            // RightmostNonLiteral boundary: Fig. 4 windows end where the
            // next keyword/splchar run begins) ...
            let mut end = begin;
            while end < n && !in_dictionaries(&trans_out[end]) {
                end += 1;
            }
            // ... and never swallows the tokens a later placeholder is
            // anchored to.
            if let Some(&next_anchor) = anchors[ph_idx + 1..].iter().flatten().find(|&&p| p > begin)
            {
                end = end.min(next_anchor);
            }

            // Candidate set B (§4.1): governed attribute for values.
            let governed: Option<String> = ph.governor.and_then(|g| {
                filled
                    .get(g as usize)
                    .map(|f: &FilledLiteral| strip_quotes(&f.literal).to_string())
            });
            let (literal, alternatives, consumed_to) =
                self.assign(trans_out, begin, end, ph.category, governed);

            filled.push(FilledLiteral {
                literal,
                alternatives,
                window: (begin, end),
            });
            running = consumed_to;
        }
        filled
    }

    /// Fill one placeholder, via the shared per-transcript fill memo when
    /// one is attached. The fill is a pure function of the key (window ×
    /// category × governor) given the fixed transcript, catalog, and config,
    /// so memoized repeats — the common case across near-identical top-k
    /// candidates — return the identical result without re-voting. Memo hits
    /// count into `literal.fill_memo_hits`.
    fn assign(
        &self,
        trans_out: &[String],
        begin: usize,
        end: usize,
        category: LitCategory,
        governed: Option<String>,
    ) -> (String, Vec<String>, usize) {
        let compute = |governed: Option<&str>| {
            let candidates = self.catalog.candidates(category, governed);
            if category == LitCategory::Number {
                self.assign_number(trans_out, begin, end)
            } else {
                self.assign_phonetic(trans_out, begin, end, candidates)
            }
        };
        match self.encodings {
            Some(memo) => {
                let key = (begin, end, category.code(), governed);
                let (fill, hit) = memo.fill_or_compute(key.clone(), || compute(key.3.as_deref()));
                if hit {
                    self.recorder.add(CounterId::LiteralFillMemoHits, 1);
                }
                (*fill).clone()
            }
            None => compute(governed.as_deref()),
        }
    }

    /// EnumerateStrings + LiteralAssignment (Box 3). Returns the winner, the
    /// ranked alternatives, and the index just past the last consumed token.
    fn assign_phonetic(
        &self,
        trans_out: &[String],
        begin: usize,
        end: usize,
        candidates: &PhoneticIndex,
    ) -> (String, Vec<String>, usize) {
        if candidates.is_empty() {
            // Nothing to vote for: echo the raw window (or a placeholder).
            let raw = trans_out[begin..end].join("");
            let lit = if raw.is_empty() { "x".to_string() } else { raw };
            return (lit, Vec::new(), end);
        }
        // Fragmented dates ("may 07 19 91", "january twentieth nineteen
        // ninety three") defeat phonetic voting; when the candidate domain
        // contains dates, try structural reassembly first.
        if candidates
            .entries()
            .iter()
            .any(|e| is_date_literal(&e.literal))
        {
            if let Some(date) = reassemble_date(&trans_out[begin..end]) {
                let rendered = format!("'{date}'");
                if let Some(e) = candidates.entries().iter().find(|e| e.literal == rendered) {
                    return (e.literal.clone(), Vec::new(), end);
                }
            }
        }
        let set_a = self.window_encodings(trans_out, begin, end);
        if set_a.is_empty() {
            // Empty window: fall back to the lexicographically first
            // candidate (deterministic, matches the tie rule).
            let lit = candidates.entries()[0].literal.clone();
            return (lit, Vec::new(), begin);
        }

        // Voting (Box 3 LiteralAssignment): each enumerated string votes for
        // its closest candidate(s); ties within a vote go to every tied
        // candidate.
        let mut count: HashMap<usize, u32> = HashMap::new();
        let mut location: HashMap<usize, usize> = HashMap::new();
        let mut comparisons = 0u64;
        let mut exact_hits = 0u64;
        for (key_a, last_pos) in set_a.iter() {
            // A candidate bucket can only be empty if the catalog column had
            // no values; skip the window's vote rather than panic on it.
            let Some(vote) = candidates.nearest(key_a) else {
                continue;
            };
            comparisons += vote.comparisons;
            exact_hits += vote.exact as u64;
            for bi in vote.winners {
                *count.entry(bi).or_insert(0) += 1;
                let loc = location.entry(bi).or_insert(0);
                *loc = (*loc).max(*last_pos);
            }
        }
        self.recorder.add(CounterId::VoteComparisons, comparisons);
        self.recorder.add(CounterId::PhoneticExactHits, exact_hits);

        // Rank candidates by (votes desc, literal lexicographic asc).
        let mut ranked: Vec<(usize, u32)> = count.into_iter().collect();
        ranked.sort_by(|a, b| {
            b.1.cmp(&a.1).then_with(|| {
                candidates.entries()[a.0]
                    .literal
                    .cmp(&candidates.entries()[b.0].literal)
            })
        });
        let winner = ranked[0].0;
        let literal = candidates.entries()[winner].literal.clone();
        let alternatives: Vec<String> = ranked
            .iter()
            .skip(1)
            .take(self.config.alternatives)
            .map(|&(bi, _)| candidates.entries()[bi].literal.clone())
            .collect();
        let consumed_to = location.get(&winner).copied().unwrap_or(begin) + 1;
        (literal, alternatives, consumed_to)
    }

    /// Enumerated encodings for one window, via the shared memo when one is
    /// attached. `literal.strings_enumerated` counts actual enumeration
    /// work, so memoized re-reads of an already-encoded window do not
    /// re-count.
    fn window_encodings(&self, trans_out: &[String], begin: usize, end: usize) -> SharedEncodings {
        let compute = || {
            let set = enumerate_strings_with(
                trans_out,
                begin,
                end,
                self.config.window_size,
                self.catalog.algorithm(),
            );
            self.recorder
                .add(CounterId::VoteEnumerations, set.len() as u64);
            set
        };
        match self.encodings {
            Some(memo) => memo.get_or_compute(begin, end, compute),
            None => Arc::new(compute()),
        }
    }

    /// Number placeholders (the LIMIT argument): take the first numeric
    /// token in the window, merging adjacent numerals split by the ASR;
    /// falls back to parsing spoken number words ("seventy thousand") when
    /// the channel never recombined them.
    fn assign_number(
        &self,
        trans_out: &[String],
        begin: usize,
        end: usize,
    ) -> (String, Vec<String>, usize) {
        if !trans_out[begin..end]
            .iter()
            .any(|w| !w.is_empty() && w.chars().all(|c| c.is_ascii_digit()))
        {
            if let Some(n) = parse_number_words(&trans_out[begin..end]) {
                return (n.to_string(), Vec::new(), end);
            }
        }
        let mut i = begin;
        while i < end {
            if trans_out[i].chars().all(|c| c.is_ascii_digit()) && !trans_out[i].is_empty() {
                // Merge a run of split numerals ("45000 412" → 45412-like
                // recovery only when the continuation looks like a suffix
                // chunk, i.e. shorter than the head's trailing zeros).
                let mut value: u64 = trans_out[i].parse().unwrap_or(0);
                let mut j = i + 1;
                while j < end && trans_out[j].chars().all(|c| c.is_ascii_digit()) {
                    if let Ok(chunk) = trans_out[j].parse::<u64>() {
                        if value.is_multiple_of(1000) && chunk < 1000 {
                            value += chunk;
                            j += 1;
                            continue;
                        }
                    }
                    break;
                }
                return (value.to_string(), Vec::new(), j);
            }
            i += 1;
        }
        ("10".to_string(), Vec::new(), end)
    }
}

/// EnumerateStrings (Box 3): all concatenations of up to `window_size`
/// adjacent tokens within `[begin, end)`, as phonetic keys, each with the
/// index of its last token.
pub fn enumerate_strings(
    trans_out: &[String],
    begin: usize,
    end: usize,
    window_size: usize,
) -> Vec<(String, usize)> {
    enumerate_strings_with(
        trans_out,
        begin,
        end,
        window_size,
        speakql_phonetics::PhoneticAlgorithm::Metaphone,
    )
}

/// [`enumerate_strings`] with an explicit phonetic algorithm (ablations).
/// An `end` past the transcript is clamped, so no window can index out of
/// bounds.
#[allow(clippy::needless_range_loop)] // index arithmetic is the clearer form here
pub fn enumerate_strings_with(
    trans_out: &[String],
    begin: usize,
    end: usize,
    window_size: usize,
    algo: speakql_phonetics::PhoneticAlgorithm,
) -> Vec<(String, usize)> {
    let end = end.min(trans_out.len());
    let mut out = Vec::new();
    for i in begin..end {
        let mut cur = String::new();
        for j in i..end.min(i + window_size) {
            // panic-safe: `j < end <= trans_out.len()` by the clamp above.
            cur.push_str(&trans_out[j]);
            out.push((algo.key(&cur), j));
        }
    }
    out
}

fn strip_quotes(s: &str) -> &str {
    s.strip_prefix('\'')
        .and_then(|t| t.strip_suffix('\''))
        .unwrap_or(s)
}

fn is_date_literal(lit: &str) -> bool {
    let bare = strip_quotes(lit);
    bare.len() >= 8
        && bare.matches('-').count() == 2
        && bare.chars().next().is_some_and(|c| c.is_ascii_digit())
}

const MONTHS: [&str; 12] = [
    "january",
    "february",
    "march",
    "april",
    "may",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
];

const DAY_ORDINALS: [(&str, u8); 31] = [
    ("first", 1),
    ("second", 2),
    ("third", 3),
    ("fourth", 4),
    ("fifth", 5),
    ("sixth", 6),
    ("seventh", 7),
    ("eighth", 8),
    ("ninth", 9),
    ("tenth", 10),
    ("eleventh", 11),
    ("twelfth", 12),
    ("thirteenth", 13),
    ("fourteenth", 14),
    ("fifteenth", 15),
    ("sixteenth", 16),
    ("seventeenth", 17),
    ("eighteenth", 18),
    ("nineteenth", 19),
    ("twentieth", 20),
    ("thirtieth", 30),
    // compound forms handled by the "twenty"/"thirty" prefix logic below
    ("twentyfirst", 21),
    ("twentysecond", 22),
    ("twentythird", 23),
    ("twentyfourth", 24),
    ("twentyfifth", 25),
    ("twentysixth", 26),
    ("twentyseventh", 27),
    ("twentyeighth", 28),
    ("twentyninth", 29),
    ("thirtyfirst", 31),
];

const NUMBER_WORDS: [(&str, u32); 28] = [
    ("zero", 0),
    ("one", 1),
    ("two", 2),
    ("three", 3),
    ("four", 4),
    ("five", 5),
    ("six", 6),
    ("seven", 7),
    ("eight", 8),
    ("nine", 9),
    ("ten", 10),
    ("eleven", 11),
    ("twelve", 12),
    ("thirteen", 13),
    ("fourteen", 14),
    ("fifteen", 15),
    ("sixteen", 16),
    ("seventeen", 17),
    ("eighteen", 18),
    ("nineteen", 19),
    ("twenty", 20),
    ("thirty", 30),
    ("forty", 40),
    ("fifty", 50),
    ("sixty", 60),
    ("seventy", 70),
    ("eighty", 80),
    ("ninety", 90),
];

fn number_word(w: &str) -> Option<u32> {
    NUMBER_WORDS.iter().find(|(n, _)| *n == w).map(|(_, v)| *v)
}

/// Parse a run of spoken number words into a value ("forty five thousand
/// three hundred ten" → 45310). Non-number words terminate the run; returns
/// `None` if no number words are present at its start.
pub fn parse_number_words(words: &[String]) -> Option<u64> {
    let mut total: u64 = 0;
    let mut group: u64 = 0;
    let mut any = false;
    for w in words {
        let w = w.to_lowercase();
        if let Some(v) = number_word(&w) {
            group += v as u64;
            any = true;
        } else {
            match w.as_str() {
                "hundred" if any => group *= 100,
                "thousand" if any => {
                    total += group.max(1) * 1_000;
                    group = 0;
                }
                "million" if any => {
                    total += group.max(1) * 1_000_000;
                    group = 0;
                }
                "billion" if any => {
                    total += group.max(1) * 1_000_000_000;
                    group = 0;
                }
                _ => {
                    if any {
                        break;
                    }
                    // Skip leading non-number words.
                }
            }
        }
    }
    any.then_some(total + group)
}

/// Reassemble a fragmented spoken date from a transcript window (the date
/// error modes of Table 1 / App. F.6). Handles:
/// - `1993-01-20` (already recombined — caught earlier, but cheap to allow),
/// - `may 07 19 91` / `may 7 1991` (partial numeral recombination),
/// - `january twentieth nineteen ninety three` (raw spoken words).
pub fn reassemble_date(window: &[String]) -> Option<String> {
    let words: Vec<String> = window.iter().map(|w| w.to_lowercase()).collect();
    // Pass-through for an already-formed date token.
    for w in &words {
        if w.len() >= 8 && w.matches('-').count() == 2 {
            if let Some(d) = parse_ymd(w) {
                return Some(d);
            }
        }
    }
    let month_pos = words.iter().position(|w| MONTHS.contains(&w.as_str()))?;
    // panic-safe: `month_pos` came from `position` on `words`, so the index
    // is in bounds.
    let month = MONTHS.iter().position(|m| *m == words[month_pos])? as u8 + 1;
    // panic-safe: `month_pos < words.len()`, so the suffix slice is in range.
    let rest = &words[month_pos + 1..];
    let mut day: Option<u8> = None;
    let mut year: Option<i32> = None;
    let mut numeric_buf: Vec<u32> = Vec::new();
    let mut word_year: Vec<u32> = Vec::new();
    let mut i = 0usize;
    while i < rest.len() {
        // panic-safe: `i < rest.len()` is the loop condition.
        let w = &rest[i];
        if let Ok(n) = w.parse::<u32>() {
            numeric_buf.push(n);
            i += 1;
            continue;
        }
        // Day ordinals, simple or compound ("twenty first").
        // panic-safe: `i + 1` is guarded by the branch condition.
        let compound = if i + 1 < rest.len() {
            format!("{}{}", w, rest[i + 1])
        } else {
            String::new()
        };
        if let Some(&(_, d)) = DAY_ORDINALS.iter().find(|(o, _)| *o == compound.as_str()) {
            day = Some(d);
            i += 2;
            continue;
        }
        if let Some(&(_, d)) = DAY_ORDINALS.iter().find(|(o, _)| *o == w.as_str()) {
            day = Some(d);
            i += 1;
            continue;
        }
        if let Some(v) = number_word(w) {
            word_year.push(v);
            i += 1;
            continue;
        }
        i += 1;
    }
    // Interpret numerics: 4-digit → year, ≤31 (first) → day, trailing pairs
    // of ≤2-digit values like "19 93" → year.
    let mut pairs: Vec<u32> = Vec::new();
    for n in numeric_buf {
        if n >= 1000 {
            year = Some(n as i32);
        } else if day.is_none() && (1..=31).contains(&n) && pairs.is_empty() {
            day = Some(n as u8);
        } else {
            pairs.push(n);
        }
    }
    // panic-safe: indexes 0 and 1 are guarded by `pairs.len() >= 2`.
    if year.is_none() && pairs.len() >= 2 {
        year = Some((pairs[0] * 100 + pairs[1]) as i32);
    }
    // Year from spoken words: "nineteen ninety three" → 19, 90, 3.
    // panic-safe: index 0 and the `1..` suffix are guarded by `!is_empty`.
    if year.is_none() && !word_year.is_empty() {
        let hi = word_year[0];
        let lo: u32 = word_year[1..].iter().sum();
        if (10..=20).contains(&hi) {
            year = Some((hi * 100 + lo) as i32);
        } else if hi >= 1000 {
            year = Some(hi as i32);
        }
    }
    let (day, year) = (day?, year?);
    if !(1..=31).contains(&day) || !(1000..=9999).contains(&year) {
        return None;
    }
    Some(format!("{year:04}-{month:02}-{day:02}"))
}

fn parse_ymd(s: &str) -> Option<String> {
    let mut it = s.split('-');
    let y: i32 = it.next()?.parse().ok()?;
    let m: u8 = it.next()?.parse().ok()?;
    let d: u8 = it.next()?.parse().ok()?;
    if it.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(format!("{y:04}-{m:02}-{d:02}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use speakql_db::{Column, Database, Table, TableSchema, Value, ValueType};
    use speakql_grammar::{Keyword, Placeholder, SplChar, StructTok};

    fn words(s: &str) -> Vec<String> {
        s.split_whitespace().map(|w| w.to_string()).collect()
    }

    fn fig4_db() -> Database {
        let mut db = Database::new("fig4");
        let mut emp = Table::new(TableSchema::new(
            "Employees",
            vec![
                Column::new("FirstName", ValueType::Text),
                Column::new("LastName", ValueType::Text),
            ],
        ));
        emp.push_row(vec![Value::Text("John".into()), Value::Text("Doe".into())]);
        db.add_table(emp);
        db.add_table(Table::new(TableSchema::new(
            "Salaries",
            vec![Column::new("Salary", ValueType::Int)],
        )));
        db
    }

    /// Paper Fig. 4: TransOut `SELECT first name FROM employers`,
    /// BestStruct `SELECT x1 FROM x2` → x1 = FirstName, x2 = Employees.
    #[test]
    fn figure4_worked_example() {
        let db = fig4_db();
        let catalog = PhoneticCatalog::build(&db);
        let s = Structure::new(
            vec![
                StructTok::Keyword(Keyword::Select),
                StructTok::Var,
                StructTok::Keyword(Keyword::From),
                StructTok::Var,
            ],
            vec![Placeholder::attribute(), Placeholder::table()],
        );
        let finder = LiteralFinder::new(&catalog, LiteralConfig::default());
        let filled = finder.fill(&words("select first name from employers"), &s);
        assert_eq!(filled[0].literal, "FirstName");
        assert_eq!(filled[1].literal, "Employees");
        assert_eq!(filled[0].window, (1, 3));
    }

    /// Paper App. E.2 Example 1: A = {FRONT, DATE, FRONTDATE},
    /// B = {FROMDATE, TODATE}; naive all-pairs minimum would pick TODATE
    /// (via DATE), but voting picks FROMDATE.
    #[test]
    fn appendix_e2_example1_voting_beats_all_pairs() {
        let idx = PhoneticIndex::build(["FROMDATE", "TODATE"]);
        let trans = words("front date");
        let set_a = enumerate_strings(&trans, 0, 2, 3);
        // A = front (FRNT), frontdate (FRNTTT), date (TT)
        assert_eq!(set_a.len(), 3);
        // Run the voting logic through the finder on a catalog-free path by
        // constructing a minimal catalog around the same B set.
        let mut db = Database::new("x");
        let mut t = Table::new(TableSchema::new(
            "T",
            vec![
                Column::new("FROMDATE", ValueType::Date),
                Column::new("TODATE", ValueType::Date),
            ],
        ));
        t.rows.clear();
        db.add_table(t);
        let catalog = PhoneticCatalog::build(&db);
        let s = Structure::new(
            vec![
                StructTok::Keyword(Keyword::Select),
                StructTok::Var,
                StructTok::Keyword(Keyword::From),
                StructTok::Var,
            ],
            vec![Placeholder::attribute(), Placeholder::table()],
        );
        let finder = LiteralFinder::new(&catalog, LiteralConfig::default());
        let filled = finder.fill(&words("select front date from t"), &s);
        assert_eq!(filled[0].literal, "FROMDATE");
        drop(idx);
    }

    /// Paper App. E.2 Example 2: A = {RUM, DATE, RUMDATE}; FROMDATE and
    /// TODATE tie via RUMDATE/DATE, but RUM's vote for FROMDATE breaks it.
    #[test]
    fn appendix_e2_example2_tie_broken_by_extra_vote() {
        let mut db = Database::new("x");
        db.add_table(Table::new(TableSchema::new(
            "T",
            vec![
                Column::new("FROMDATE", ValueType::Date),
                Column::new("TODATE", ValueType::Date),
            ],
        )));
        let catalog = PhoneticCatalog::build(&db);
        let s = Structure::new(
            vec![
                StructTok::Keyword(Keyword::Select),
                StructTok::Var,
                StructTok::Keyword(Keyword::From),
                StructTok::Var,
            ],
            vec![Placeholder::attribute(), Placeholder::table()],
        );
        let finder = LiteralFinder::new(&catalog, LiteralConfig::default());
        let filled = finder.fill(&words("select rum date from t"), &s);
        assert_eq!(filled[0].literal, "FROMDATE");
    }

    /// §2 running example end-state: wear/first/name → FirstName window,
    /// Jon → 'John' from the governed FirstName domain.
    #[test]
    fn running_example_value_from_governed_domain() {
        let db = fig4_db();
        let catalog = PhoneticCatalog::build(&db);
        // SELECT x1 FROM x2 WHERE x3 = x4 with governor x3 -> x4.
        let s = Structure::new(
            vec![
                StructTok::Keyword(Keyword::Select),
                StructTok::Var,
                StructTok::Keyword(Keyword::From),
                StructTok::Var,
                StructTok::Keyword(Keyword::Where),
                StructTok::Var,
                StructTok::SplChar(SplChar::Eq),
                StructTok::Var,
            ],
            vec![
                Placeholder::attribute(),
                Placeholder::table(),
                Placeholder::attribute(),
                Placeholder::value(Some(2)),
            ],
        );
        let finder = LiteralFinder::new(&catalog, LiteralConfig::default());
        let trans = words("select last name from employers where first name = jon");
        let filled = finder.fill(&trans, &s);
        assert_eq!(filled[0].literal, "LastName");
        assert_eq!(filled[1].literal, "Employees");
        assert_eq!(filled[2].literal, "FirstName");
        assert_eq!(filled[3].literal, "'John'");
    }

    #[test]
    fn number_placeholder_merges_split_numerals() {
        let db = fig4_db();
        let catalog = PhoneticCatalog::build(&db);
        let finder = LiteralFinder::new(&catalog, LiteralConfig::default());
        let s = Structure::new(
            vec![
                StructTok::Keyword(Keyword::Select),
                StructTok::Var,
                StructTok::Keyword(Keyword::From),
                StructTok::Var,
                StructTok::Keyword(Keyword::Limit),
                StructTok::Var,
            ],
            vec![
                Placeholder::attribute(),
                Placeholder::table(),
                Placeholder::number(),
            ],
        );
        let filled = finder.fill(&words("select salary from salaries limit 45000 412"), &s);
        assert_eq!(filled[2].literal, "45412");
    }

    #[test]
    fn more_placeholders_than_windows_still_fills() {
        let db = fig4_db();
        let catalog = PhoneticCatalog::build(&db);
        let finder = LiteralFinder::new(&catalog, LiteralConfig::default());
        let s = Structure::new(
            vec![
                StructTok::Keyword(Keyword::Select),
                StructTok::Var,
                StructTok::Keyword(Keyword::From),
                StructTok::Var,
            ],
            vec![Placeholder::attribute(), Placeholder::table()],
        );
        // Transcript has no literal tokens at all.
        let filled = finder.fill(&words("select from"), &s);
        assert_eq!(filled.len(), 2);
        assert!(!filled[0].literal.is_empty());
        assert!(!filled[1].literal.is_empty());
    }

    #[test]
    fn date_reassembly_forms() {
        let w = |s: &str| {
            s.split_whitespace()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
        };
        // Table 1's error output for 1991-05-07.
        assert_eq!(
            reassemble_date(&w("may 07 19 91")),
            Some("1991-05-07".into())
        );
        assert_eq!(reassemble_date(&w("may 7 1991")), Some("1991-05-07".into()));
        // Raw spoken words, no recombination at all.
        assert_eq!(
            reassemble_date(&w("january twentieth nineteen ninety three")),
            Some("1993-01-20".into())
        );
        assert_eq!(
            reassemble_date(&w("march twenty first nineteen ninety")),
            Some("1990-03-21".into())
        );
        // Already recombined.
        assert_eq!(reassemble_date(&w("1993-01-20")), Some("1993-01-20".into()));
        // Garbage.
        assert_eq!(reassemble_date(&w("salary from employees")), None);
        assert_eq!(reassemble_date(&w("may")), None);
    }

    #[test]
    fn fragmented_date_recovered_from_domain() {
        use speakql_db::Date as DbDate;
        let mut db = Database::new("dates");
        let mut t = Table::new(TableSchema::new(
            "T",
            vec![Column::new("FromDate", ValueType::Date)],
        ));
        let date = |s: &str| match DbDate::parse(s) {
            Some(d) => d,
            None => panic!("fixture date must parse: {s}"),
        };
        t.push_row(vec![Value::Date(date("1993-01-20"))]);
        t.push_row(vec![Value::Date(date("1991-05-07"))]);
        db.add_table(t);
        let catalog = PhoneticCatalog::build(&db);
        let finder = LiteralFinder::new(&catalog, LiteralConfig::default());
        let s = Structure::new(
            vec![
                StructTok::Keyword(Keyword::Select),
                StructTok::Var,
                StructTok::Keyword(Keyword::From),
                StructTok::Var,
                StructTok::Keyword(Keyword::Where),
                StructTok::Var,
                StructTok::SplChar(SplChar::Eq),
                StructTok::Var,
            ],
            vec![
                Placeholder::attribute(),
                Placeholder::table(),
                Placeholder::attribute(),
                Placeholder::value(Some(2)),
            ],
        );
        let filled = finder.fill(
            &words("select from date from t where from date = may 07 19 91"),
            &s,
        );
        assert_eq!(filled[3].literal, "'1991-05-07'");
    }

    #[test]
    fn spoken_number_words_parse() {
        let w = |s: &str| {
            s.split_whitespace()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(
            parse_number_words(&w("forty five thousand three hundred ten")),
            Some(45310)
        );
        assert_eq!(parse_number_words(&w("seventy thousand")), Some(70000));
        assert_eq!(parse_number_words(&w("ten")), Some(10));
        assert_eq!(parse_number_words(&w("two hundred")), Some(200));
        assert_eq!(parse_number_words(&w("one million one")), Some(1_000_001));
        assert_eq!(parse_number_words(&w("salary from")), None);
    }

    #[test]
    fn limit_from_unrecombined_number_words() {
        let db = fig4_db();
        let catalog = PhoneticCatalog::build(&db);
        let finder = LiteralFinder::new(&catalog, LiteralConfig::default());
        let s = Structure::new(
            vec![
                StructTok::Keyword(Keyword::Select),
                StructTok::Var,
                StructTok::Keyword(Keyword::From),
                StructTok::Var,
                StructTok::Keyword(Keyword::Limit),
                StructTok::Var,
            ],
            vec![
                Placeholder::attribute(),
                Placeholder::table(),
                Placeholder::number(),
            ],
        );
        let filled = finder.fill(&words("select salary from salaries limit twenty five"), &s);
        assert_eq!(filled[2].literal, "25");
    }

    #[test]
    fn enumerate_strings_window_cap() {
        let trans = words("a b c d");
        let set = enumerate_strings(&trans, 0, 4, 2);
        // 4 singletons + 3 pairs
        assert_eq!(set.len(), 7);
        let set3 = enumerate_strings(&trans, 0, 4, 3);
        assert_eq!(set3.len(), 9);
    }
}
