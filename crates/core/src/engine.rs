//! The end-to-end SpeakQL engine (paper Fig. 2).
//!
//! `ASR transcription → SplChar handling + masking → structure search →
//! literal determination → ranked SQL candidates`, with clause-level
//! transcription (§5) and the one-level nested-query heuristic (App. F.8).

use crate::cache::SkeletonCache;
use crate::catalog::PhoneticCatalog;
use crate::error::{panic_message, SpeakQlError, SpeakQlResult};
use crate::literal::{FilledLiteral, LiteralConfig, LiteralFinder, WindowEncodings};
use parking_lot::Mutex;
use speakql_db::Database;
use speakql_editdist::{Dist, Weights};
use speakql_grammar::{
    generate_clause_structures, process_transcript, tokenize_transcript, ClauseKind,
    GeneratorConfig, ProcessedTranscript, Structure,
};
use speakql_index::{SearchConfig, SearchHit, StructureIndex};
use speakql_observe::{CounterId, PipelineReport, Recorder, SpanId};
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fault-injection hook for robustness testing: when set on a
/// [`SpeakQlConfig`], the hook runs against each raw transcript before the
/// pipeline does. A hook that panics simulates a poisoned input — the engine
/// must contain the panic to a per-transcript
/// [`SpeakQlError::WorkerPanic`] instead of unwinding into the caller or
/// aborting a batch. The CI fault-injection harness is the intended user;
/// production configurations leave this unset.
#[derive(Clone)]
pub struct FaultHook(Arc<dyn Fn(&str) + Send + Sync>);

impl FaultHook {
    /// Wrap a closure to run against every transcript before transcription.
    pub fn new(hook: impl Fn(&str) + Send + Sync + 'static) -> FaultHook {
        FaultHook(Arc::new(hook))
    }

    /// Run the hook against one transcript.
    pub fn fire(&self, transcript: &str) {
        (self.0)(transcript)
    }
}

impl std::fmt::Debug for FaultHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FaultHook(..)")
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SpeakQlConfig {
    /// Structure-space caps for the offline generator (§3.2).
    pub generator: GeneratorConfig,
    /// Search configuration (top-k, BDB/DAP/INV).
    pub search: SearchConfig,
    /// Edit-operation weights (§3.4).
    pub weights: Weights,
    /// Literal-determination window and alternative count (§4).
    pub literal: LiteralConfig,
    /// Worker threads for engine-level parallelism: candidate construction
    /// within one `transcribe` call, and the worker pool behind
    /// [`SpeakQl::transcribe_batch`]. `1` (the default) is fully sequential;
    /// `0` means one worker per available core. Structure-search parallelism
    /// is configured separately via [`SearchConfig::threads`].
    pub threads: usize,
    /// Record pipeline observability metrics (stage latencies, search and
    /// voting work counters) into the engine's [`Recorder`], retrievable via
    /// [`SpeakQl::report`]. `false` (the default) makes every metric hook a
    /// no-op; the transcriptions produced are identical either way.
    pub observe: bool,
    /// Capacity (in entries) of the cross-query [`SkeletonCache`] memoizing
    /// structure-search results by masked skeleton. `0` (the default)
    /// disables caching entirely — every search walks the index, exactly as
    /// before the cache existed. The cache is shared by [`SpeakQl::transcribe`]
    /// and [`SpeakQl::transcribe_batch`]; clause-level transcription never
    /// consults it (clause indexes hold different structure arenas).
    pub cache_capacity: usize,
    /// Upper bound on transcript length in words. The structure search is
    /// quadratic in transcript length, so a pathologically long input could
    /// monopolize a worker for minutes; anything longer than this cap is
    /// rejected up front with [`SpeakQlError::TranscriptTooLong`]. The
    /// default (1024) is two orders of magnitude above the longest query the
    /// paper's workloads dictate.
    pub max_transcript_words: usize,
    /// Fault-injection hook for robustness testing; `None` (the default) in
    /// any real configuration. See [`FaultHook`].
    pub fault_hook: Option<FaultHook>,
}

impl SpeakQlConfig {
    /// The paper's configuration: full structure space, top-5 candidates,
    /// BDB on, approximations off.
    pub fn paper() -> SpeakQlConfig {
        SpeakQlConfig {
            generator: GeneratorConfig::paper(),
            search: SearchConfig {
                k: 5,
                ..SearchConfig::default()
            },
            weights: Weights::PAPER,
            literal: LiteralConfig::default(),
            threads: 1,
            observe: false,
            cache_capacity: 0,
            max_transcript_words: 1024,
            fault_hook: None,
        }
    }

    /// Medium structure space — same phenomena, CI-friendly latency.
    pub fn medium() -> SpeakQlConfig {
        SpeakQlConfig {
            generator: GeneratorConfig::medium(),
            ..SpeakQlConfig::paper()
        }
    }

    /// Small structure space for unit tests.
    pub fn small() -> SpeakQlConfig {
        SpeakQlConfig {
            generator: GeneratorConfig::small(),
            ..SpeakQlConfig::paper()
        }
    }

    /// This configuration with `threads` engine workers.
    pub fn with_threads(mut self, threads: usize) -> SpeakQlConfig {
        self.threads = threads;
        self
    }

    /// This configuration with metric recording switched on or off.
    pub fn with_observability(mut self, observe: bool) -> SpeakQlConfig {
        self.observe = observe;
        self
    }

    /// This configuration with a skeleton-result cache of `capacity` entries
    /// (`0` disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> SpeakQlConfig {
        self.cache_capacity = capacity;
        self
    }

    /// This configuration with a transcript word cap of `max` words.
    pub fn with_max_transcript_words(mut self, max: usize) -> SpeakQlConfig {
        self.max_transcript_words = max;
        self
    }

    /// This configuration with a [`FaultHook`] installed (robustness tests
    /// only).
    pub fn with_fault_hook(mut self, hook: FaultHook) -> SpeakQlConfig {
        self.fault_hook = Some(hook);
        self
    }

    /// The engine worker count this configuration resolves to (`0` = all
    /// cores).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }
}

impl Default for SpeakQlConfig {
    fn default() -> Self {
        SpeakQlConfig::paper()
    }
}

/// One candidate corrected query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The corrected SQL text.
    pub sql: String,
    /// The structure it was built from.
    pub structure: Structure,
    /// Filled literals, one per placeholder.
    pub literals: Vec<FilledLiteral>,
    /// The structure's weighted edit distance from `MaskOut`.
    pub distance: Dist,
}

/// Per-stage wall-clock breakdown of one transcription (Fig. 2's pipeline
/// stages). When candidate construction runs on several workers, `literal`
/// and `render` accumulate across workers, so they measure total work rather
/// than the (shorter) critical path; `tokenize` and `search` are always
/// single measurements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Transcript tokenization, SplChar handling, and masking (§3.3).
    pub tokenize: Duration,
    /// Structure search over the trie index (§3.4).
    pub search: Duration,
    /// Literal determination for every candidate (§4).
    pub literal: Duration,
    /// SQL rendering for every candidate.
    pub render: Duration,
}

impl StageTimings {
    /// Sum of all stage timings.
    pub fn total(&self) -> Duration {
        self.tokenize + self.search + self.literal + self.render
    }
}

impl std::ops::Add for StageTimings {
    type Output = StageTimings;

    fn add(self, rhs: StageTimings) -> StageTimings {
        StageTimings {
            tokenize: self.tokenize + rhs.tokenize,
            search: self.search + rhs.search,
            literal: self.literal + rhs.literal,
            render: self.render + rhs.render,
        }
    }
}

/// The result of transcribing one spoken query.
#[derive(Debug, Clone)]
pub struct Transcription {
    /// The raw input transcript.
    pub transcript: String,
    /// The processed transcript (after SplChar handling and masking).
    pub processed: ProcessedTranscript,
    /// Ranked candidates, best first. Always non-empty: an engine whose
    /// index is empty returns [`SpeakQlError::EmptyIndex`] instead of a
    /// candidate-less transcription.
    pub candidates: Vec<Candidate>,
    /// End-to-end latency of this transcription.
    pub elapsed: Duration,
    /// Per-stage latency breakdown.
    pub stages: StageTimings,
}

impl Transcription {
    /// The best corrected SQL, if any.
    pub fn best_sql(&self) -> Option<&str> {
        self.candidates.first().map(|c| c.sql.as_str())
    }
}

/// The SpeakQL engine: a structure index plus a phonetic catalog.
pub struct SpeakQl {
    index: Arc<StructureIndex>,
    catalog: PhoneticCatalog,
    config: SpeakQlConfig,
    /// Lazily built per-clause indexes for clause-level dictation.
    clause_indexes: Mutex<HashMap<ClauseKind, Arc<StructureIndex>>>,
    /// Pipeline metric registry; a no-op unless [`SpeakQlConfig::observe`].
    recorder: Recorder,
    /// Cross-query skeleton-result cache; `None` unless
    /// [`SpeakQlConfig::cache_capacity`] is non-zero. Only ever consulted for
    /// searches against the main index — clause indexes hold different
    /// structure arenas, so their hits must never share keys with the main
    /// index's.
    skeleton_cache: Option<Arc<SkeletonCache>>,
}

impl SpeakQl {
    /// Build an engine for a database (generates and indexes the structure
    /// space — expensive for the paper-scale configuration; reuse the engine
    /// across queries).
    pub fn new(db: &Database, config: SpeakQlConfig) -> SpeakQl {
        let index = Arc::new(StructureIndex::from_grammar(
            &config.generator,
            config.weights,
        ));
        SpeakQl::with_index(db, index, config)
    }

    /// Build an engine around a structure index persisted at `path`,
    /// loading it through the zero-copy validate-then-borrow path (see
    /// `speakql_index::persist`): no per-node rebuild, O(segments)
    /// validation plus linear checksums. Load failures surface as the typed
    /// [`SpeakQlError::IndexLoad`] — carrying the persist layer's stable
    /// error class — and increment `engine.errors.index_load` on the
    /// engine-to-be's recorder semantics (a fresh recorder honoring
    /// `config.observe`, since there is no engine yet to own one).
    pub fn with_persisted_index(
        db: &Database,
        path: impl AsRef<std::path::Path>,
        config: SpeakQlConfig,
    ) -> SpeakQlResult<SpeakQl> {
        let recorder = Recorder::new(config.observe);
        match speakql_index::load_from_path_observed(path, &recorder) {
            Ok(index) => {
                let mut engine = SpeakQl::with_index(db, Arc::new(index), config);
                // Keep the load counters: the engine adopts the recorder
                // that observed its own index load.
                engine.recorder = recorder;
                Ok(engine)
            }
            Err(e) => {
                recorder.incr(CounterId::ErrorsIndexLoad);
                Err(SpeakQlError::IndexLoad {
                    class: e.class(),
                    message: e.to_string(),
                })
            }
        }
    }

    /// Build an engine around a pre-built structure index (lets experiments
    /// share one index across many databases/configs).
    pub fn with_index(db: &Database, index: Arc<StructureIndex>, config: SpeakQlConfig) -> SpeakQl {
        SpeakQl {
            index,
            catalog: PhoneticCatalog::build(db),
            recorder: Recorder::new(config.observe),
            skeleton_cache: (config.cache_capacity > 0)
                .then(|| Arc::new(SkeletonCache::new(config.cache_capacity))),
            config,
            clause_indexes: Mutex::new(HashMap::new()),
        }
    }

    /// Build an engine around a pre-built structure index *and* an existing
    /// skeleton cache shared with other engines. Entries are keyed by the
    /// index's arena [`generation`](StructureIndex::generation), so engines
    /// over the same `Arc<StructureIndex>` (multi-tenant sessions on one
    /// schema) reuse each other's warm search results, while engines over
    /// different arenas sharing the same cache can never collide.
    ///
    /// The caller also supplies the [`Recorder`], so a fleet of engines can
    /// aggregate metrics into one report (the multi-tenant server does).
    /// [`SpeakQlConfig::cache_capacity`] and [`SpeakQlConfig::observe`] are
    /// ignored here: the shared cache's capacity and the passed recorder's
    /// enabled-ness govern.
    pub fn with_shared_cache(
        db: &Database,
        index: Arc<StructureIndex>,
        cache: Arc<SkeletonCache>,
        recorder: Recorder,
        config: SpeakQlConfig,
    ) -> SpeakQl {
        SpeakQl {
            index,
            catalog: PhoneticCatalog::build(db),
            recorder,
            skeleton_cache: Some(cache),
            config,
            clause_indexes: Mutex::new(HashMap::new()),
        }
    }

    /// The structure index the engine searches.
    pub fn index(&self) -> &StructureIndex {
        &self.index
    }

    /// The phonetic catalog literals are voted from.
    pub fn catalog(&self) -> &PhoneticCatalog {
        &self.catalog
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &SpeakQlConfig {
        &self.config
    }

    /// The engine's metric recorder (disabled unless
    /// [`SpeakQlConfig::observe`] was set).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The engine's skeleton-result cache, or `None` when
    /// [`SpeakQlConfig::cache_capacity`] is `0`.
    pub fn skeleton_cache(&self) -> Option<&SkeletonCache> {
        self.skeleton_cache.as_deref()
    }

    /// Snapshot every pipeline counter and stage-latency histogram recorded
    /// so far. All-zero when observability is off.
    pub fn report(&self) -> PipelineReport {
        self.recorder.report()
    }

    /// Transcribe a raw ASR transcript into ranked corrected-SQL candidates.
    /// Applies the nested-query heuristic when the transcript contains a
    /// second SELECT (App. F.8).
    ///
    /// Never panics: malformed input is classified into a typed
    /// [`SpeakQlError`] (empty transcript, transcript over the word cap,
    /// empty index), and any panic a pipeline worker raises is contained at
    /// this boundary and returned as [`SpeakQlError::WorkerPanic`]. Each
    /// error class increments its `engine.errors.*` counter.
    pub fn transcribe(&self, transcript: &str) -> SpeakQlResult<Transcription> {
        self.transcribe_guarded(transcript, false)
    }

    /// Transcribe many transcripts on a bounded worker pool of
    /// [`SpeakQlConfig::threads`] threads. Output order matches input order,
    /// and each result is identical to the corresponding
    /// [`SpeakQl::transcribe`] call — the queries are independent, so this
    /// is pure inter-query parallelism. Within each batch worker, per-call
    /// parallelism (parallel search, parallel candidate construction) is
    /// disabled to avoid oversubscribing the pool.
    ///
    /// Failure is contained per slot: a transcript that panics a worker (or
    /// fails validation) yields an `Err` in its own output position while
    /// every other slot completes normally — one poisoned transcript can
    /// never abort the batch.
    pub fn transcribe_batch(&self, transcripts: &[&str]) -> Vec<SpeakQlResult<Transcription>> {
        // An empty batch must not spin up (or even size) the worker pool.
        if transcripts.is_empty() {
            return Vec::new();
        }
        let workers = self.config.effective_threads().min(transcripts.len());
        if workers <= 1 {
            return transcripts
                .iter()
                .map(|t| {
                    self.recorder.incr(CounterId::BatchJobs);
                    self.transcribe(t)
                })
                .collect();
        }
        // Queue-wait clock: jobs are submitted all at once, so a job's wait
        // is the time from here until a worker dequeues it.
        let submitted = self.recorder.is_enabled().then(Instant::now);
        let cursor = AtomicUsize::new(0);
        let per_worker: Vec<Vec<(usize, SpeakQlResult<Transcription>)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut done = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(t) = transcripts.get(i) else { break };
                                if let Some(t0) = submitted {
                                    self.recorder
                                        .record_duration(SpanId::BatchQueueWait, t0.elapsed());
                                }
                                self.recorder.incr(CounterId::BatchJobs);
                                // Per-slot containment happens inside
                                // `transcribe_guarded`; a poisoned transcript
                                // leaves this loop (and thread) alive.
                                done.push((i, self.transcribe_guarded(t, true)));
                            }
                            done
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // A worker can only die from a panic escaping the
                    // containment boundary (e.g. inside the recorder). Treat
                    // its lost slots as worker panics below rather than
                    // aborting the surviving ones.
                    .map(|h| h.join().unwrap_or_default())
                    .collect()
            });
        let mut slots: Vec<Option<SpeakQlResult<Transcription>>> =
            (0..transcripts.len()).map(|_| None).collect();
        for (i, t) in per_worker.into_iter().flatten() {
            // panic-safe: `i` is an index into `transcripts` assigned at
            // fan-out, and `slots` has exactly `transcripts.len()` entries.
            slots[i] = Some(t);
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    let e = SpeakQlError::WorkerPanic {
                        message: "batch worker terminated before completing this slot".to_string(),
                    };
                    self.recorder.incr(e.counter());
                    Err(e)
                })
            })
            .collect()
    }

    /// Containment boundary shared by every public transcription entry
    /// point: runs `work` under `catch_unwind`, converts an escaped panic to
    /// [`SpeakQlError::WorkerPanic`], and counts every error class.
    fn contain(
        &self,
        work: impl FnOnce() -> SpeakQlResult<Transcription>,
    ) -> SpeakQlResult<Transcription> {
        // AssertUnwindSafe: the engine's shared state is parking_lot mutexes
        // (no poisoning) and monotone atomics; a contained panic can leave
        // them mid-update only in ways the next call tolerates.
        let result = catch_unwind(AssertUnwindSafe(work)).unwrap_or_else(|payload| {
            Err(SpeakQlError::WorkerPanic {
                message: panic_message(payload),
            })
        });
        if let Err(e) = &result {
            self.recorder.incr(e.counter());
        }
        result
    }

    /// One guarded transcription; `batch_worker` marks calls made from
    /// inside the `transcribe_batch` pool, which must stay single-threaded.
    fn transcribe_guarded(
        &self,
        transcript: &str,
        batch_worker: bool,
    ) -> SpeakQlResult<Transcription> {
        self.contain(|| self.transcribe_checked(transcript, batch_worker))
    }

    /// Input validation plus the full pipeline; panics raised below here are
    /// contained by [`SpeakQl::contain`].
    fn transcribe_checked(
        &self,
        transcript: &str,
        batch_worker: bool,
    ) -> SpeakQlResult<Transcription> {
        if let Some(hook) = &self.config.fault_hook {
            hook.fire(transcript);
        }
        let start = Instant::now();
        let words = tokenize_transcript(transcript);
        self.validate(&words)?;
        if self.index.is_empty() {
            return Err(SpeakQlError::EmptyIndex);
        }
        let t = if let Some(result) = self.try_nested(transcript, &words, start, batch_worker) {
            self.recorder.incr(CounterId::NestedSplits);
            result
        } else {
            let mut t = self.transcribe_words(
                &words,
                &self.index,
                self.skeleton_cache.as_deref(),
                start,
                batch_worker,
            );
            t.transcript = transcript.to_string();
            t
        };
        self.recorder.incr(CounterId::Transcriptions);
        self.recorder.record_duration(SpanId::Transcribe, t.elapsed);
        Ok(t)
    }

    /// Shared transcript validation: word presence and the length cap.
    fn validate(&self, words: &[String]) -> SpeakQlResult<()> {
        if words.is_empty() {
            return Err(SpeakQlError::EmptyTranscript);
        }
        if words.len() > self.config.max_transcript_words {
            return Err(SpeakQlError::TranscriptTooLong {
                words: words.len(),
                max: self.config.max_transcript_words,
            });
        }
        Ok(())
    }

    /// Clause-level transcription (§5): search only the structures of one
    /// clause kind, e.g. re-dictating just the WHERE clause. Shares
    /// [`SpeakQl::transcribe`]'s error contract: typed errors, contained
    /// panics, never an unwind into the caller.
    pub fn transcribe_clause(
        &self,
        clause: ClauseKind,
        transcript: &str,
    ) -> SpeakQlResult<Transcription> {
        self.contain(|| {
            if let Some(hook) = &self.config.fault_hook {
                hook.fire(transcript);
            }
            let start = Instant::now();
            let words = tokenize_transcript(transcript);
            self.validate(&words)?;
            let index = self.clause_index(clause);
            if index.is_empty() {
                return Err(SpeakQlError::EmptyIndex);
            }
            let mut t = self.transcribe_words(&words, &index, None, start, false);
            t.transcript = transcript.to_string();
            self.recorder.incr(CounterId::Transcriptions);
            self.recorder.record_duration(SpanId::Transcribe, t.elapsed);
            Ok(t)
        })
    }

    fn clause_index(&self, clause: ClauseKind) -> Arc<StructureIndex> {
        let mut map = self.clause_indexes.lock();
        map.entry(clause)
            .or_insert_with(|| {
                let structures = generate_clause_structures(&self.config.generator, clause);
                Arc::new(StructureIndex::build(structures, self.config.weights))
            })
            .clone()
    }

    /// Core pipeline over pre-tokenized transcript words. `cache` is the
    /// skeleton-result cache to consult for the structure search, or `None`
    /// when the results would not be reusable (clause-level indexes, or
    /// caching disabled).
    fn transcribe_words(
        &self,
        words: &[String],
        index: &StructureIndex,
        cache: Option<&SkeletonCache>,
        start: Instant,
        batch_worker: bool,
    ) -> Transcription {
        let mut stages = StageTimings::default();

        let t0 = Instant::now();
        let processed = process_transcript(words);
        stages.tokenize = t0.elapsed();

        let search_cfg = if batch_worker {
            self.config.search.with_threads(1)
        } else {
            self.config.search
        };
        let t1 = Instant::now();
        let generation = index.generation();
        let cached =
            cache.and_then(|c| c.get(generation, &search_cfg, &processed.masked, &self.recorder));
        let hits = match cached {
            Some(hits) => hits,
            None => {
                let (hits, _) =
                    index.search_observed(&processed.masked, &search_cfg, &self.recorder);
                if let Some(c) = cache {
                    c.insert(
                        generation,
                        &search_cfg,
                        &processed.masked,
                        hits.clone(),
                        &self.recorder,
                    );
                }
                hits
            }
        };
        stages.search = t1.elapsed();

        let intra = if batch_worker {
            1
        } else {
            self.config.effective_threads()
        };
        // One window-encoding memo per transcription: the top-k candidates
        // repeatedly enumerate the same transcript windows, and the memo is
        // shared across candidate-construction workers.
        let encodings = WindowEncodings::new();
        let candidates = if intra > 1 && hits.len() > 1 {
            // Each hit's literal determination + rendering is independent;
            // build candidates on scoped workers, one chunk per worker, and
            // concatenate in hit order so the output is deterministic.
            let chunk = hits.len().div_ceil(intra.min(hits.len()));
            let per_chunk: Vec<(Vec<Candidate>, StageTimings)> = std::thread::scope(|scope| {
                let handles: Vec<_> = hits
                    .chunks(chunk)
                    .map(|hs| {
                        scope.spawn(|| {
                            let mut st = StageTimings::default();
                            let cs = hs
                                .iter()
                                .map(|&h| {
                                    self.build_candidate(index, &processed, &encodings, h, &mut st)
                                })
                                .collect();
                            (cs, st)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // Re-raise worker panics on the calling thread so the
                    // `contain` boundary converts them into a typed error
                    // instead of aborting the whole scope.
                    .map(|h| match h.join() {
                        Ok(chunk) => chunk,
                        Err(payload) => resume_unwind(payload),
                    })
                    .collect()
            });
            let mut cs = Vec::with_capacity(hits.len());
            for (chunk_cs, st) in per_chunk {
                cs.extend(chunk_cs);
                stages.literal += st.literal;
                stages.render += st.render;
            }
            cs
        } else {
            hits.into_iter()
                .map(|hit| self.build_candidate(index, &processed, &encodings, hit, &mut stages))
                .collect()
        };

        self.recorder
            .add(CounterId::CandidatesBuilt, candidates.len() as u64);
        self.recorder
            .record_duration(SpanId::Tokenize, stages.tokenize);
        self.recorder.record_duration(SpanId::Search, stages.search);
        self.recorder
            .record_duration(SpanId::Literal, stages.literal);
        self.recorder.record_duration(SpanId::Render, stages.render);

        Transcription {
            transcript: words.join(" "),
            processed,
            candidates,
            elapsed: start.elapsed(),
            stages,
        }
    }

    /// Build one candidate from a search hit: literal determination plus SQL
    /// rendering, with both stages timed into `stages`.
    fn build_candidate(
        &self,
        index: &StructureIndex,
        processed: &ProcessedTranscript,
        encodings: &WindowEncodings,
        hit: SearchHit,
        stages: &mut StageTimings,
    ) -> Candidate {
        let finder = LiteralFinder::new(&self.catalog, self.config.literal)
            .with_recorder(self.recorder.clone())
            .with_encodings(encodings);
        let structure = index.structure(hit.structure);
        let t0 = Instant::now();
        let literals = finder.fill_aligned(
            &processed.words,
            &processed.masked,
            &structure,
            self.config.weights,
        );
        stages.literal += t0.elapsed();
        let t1 = Instant::now();
        let sql = render_candidate(&structure, &literals);
        stages.render += t1.elapsed();
        Candidate {
            sql,
            structure,
            literals,
            distance: hit.distance,
        }
    }

    /// Nested-query heuristic (App. F.8): if a second SELECT appears, split
    /// the transcript there, transcribe inner and outer independently, and
    /// splice the inner SQL into the placeholder the outer assigned to the
    /// subquery span.
    fn try_nested(
        &self,
        transcript: &str,
        words: &[String],
        start: Instant,
        batch_worker: bool,
    ) -> Option<Transcription> {
        let selects: Vec<usize> = words
            .iter()
            .enumerate()
            .filter(|(_, w)| w.eq_ignore_ascii_case("select"))
            .map(|(i, _)| i)
            .collect();
        if selects.len() < 2 {
            return None;
        }
        let split = selects[1];
        // Guard: a real nested query has a non-trivial inner body and an
        // outer predicate context; two adjacent SELECTs in word soup do not.
        if split < 4 || words.len() - split < 4 {
            return None;
        }
        // The inner query runs to the end, minus a trailing close-paren.
        let mut inner_words: Vec<String> = words[split..].to_vec();
        if matches!(
            inner_words.last().map(String::as_str),
            Some(")") | Some("close")
        ) {
            inner_words.pop();
            if matches!(inner_words.last().map(String::as_str), Some("close")) {
                inner_words.pop();
            }
        }
        // Strip "close parenthesis" / ")" remnants.
        while matches!(
            inner_words.last().map(String::as_str),
            Some("parenthesis") | Some("close") | Some(")")
        ) {
            inner_words.pop();
        }
        // The outer query replaces the subquery span with a sentinel literal
        // inside parentheses.
        let mut outer_words: Vec<String> = words[..split].to_vec();
        // Drop an immediately preceding open-paren (spoken or symbolic) —
        // we re-add it around the sentinel.
        while matches!(
            outer_words.last().map(String::as_str),
            Some("(") | Some("open") | Some("parenthesis")
        ) {
            outer_words.pop();
        }
        const SENTINEL: &str = "subqueryplaceholder";
        outer_words.push("(".to_string());
        outer_words.push(SENTINEL.to_string());
        outer_words.push(")".to_string());

        let cache = self.skeleton_cache.as_deref();
        let inner = self.transcribe_words(
            &inner_words,
            &self.index,
            cache,
            Instant::now(),
            batch_worker,
        );
        let outer = self.transcribe_words(
            &outer_words,
            &self.index,
            cache,
            Instant::now(),
            batch_worker,
        );
        let inner_sql = inner.best_sql()?.to_string();

        // Splice: in each outer candidate, the placeholder whose window
        // contains the sentinel becomes the parenthesized inner query.
        let sentinel_pos = outer.processed.words.iter().position(|w| w == SENTINEL)?;
        let candidates: Vec<Candidate> = outer
            .candidates
            .into_iter()
            .map(|mut c| {
                let target = c
                    .literals
                    .iter()
                    .position(|f| f.window.0 <= sentinel_pos && sentinel_pos < f.window.1)
                    .unwrap_or_else(|| c.literals.len().saturating_sub(1));
                // Subqueries are only valid in value position (`IN (...)` or
                // the right side of a comparison); leave other candidates
                // unspliced rather than render invalid SQL.
                let is_value_slot = c
                    .structure
                    .placeholders
                    .get(target)
                    .map(|p| matches!(p.category, speakql_grammar::LitCategory::Value))
                    .unwrap_or(false);
                if !is_value_slot {
                    return c;
                }
                // Wrap in parentheses only if the structure does not already
                // parenthesize this placeholder (e.g. `IN ( x )`).
                let already_parenthesized = c
                    .structure
                    .var_positions()
                    .nth(target)
                    .map(|(tok_pos, _)| {
                        use speakql_grammar::{SplChar, StructTok};
                        let prev = tok_pos.checked_sub(1).map(|p| c.structure.tokens[p].tok());
                        let next = c.structure.tokens.get(tok_pos + 1).map(|t| t.tok());
                        matches!(prev, Some(StructTok::SplChar(SplChar::LParen)))
                            && matches!(next, Some(StructTok::SplChar(SplChar::RParen)))
                    })
                    .unwrap_or(false);
                if let Some(f) = c.literals.get_mut(target) {
                    f.literal = if already_parenthesized {
                        inner_sql.clone()
                    } else {
                        format!("( {inner_sql} )")
                    };
                    f.alternatives.clear();
                }
                c.sql = render_candidate(&c.structure, &c.literals);
                c
            })
            .collect();

        Some(Transcription {
            transcript: transcript.to_string(),
            processed: outer.processed,
            candidates,
            elapsed: start.elapsed(),
            stages: inner.stages + outer.stages,
        })
    }
}

/// Render a structure with filled literals to SQL text.
fn render_candidate(structure: &Structure, literals: &[FilledLiteral]) -> String {
    let lits: Vec<String> = literals.iter().map(|f| f.literal.clone()).collect();
    let tokens = structure.bind(&lits);
    speakql_grammar::render_tokens(&tokens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use speakql_db::{Column, Table, TableSchema, Value, ValueType};

    fn toy_db() -> Database {
        let mut db = Database::new("toy");
        let mut emp = Table::new(TableSchema::new(
            "Employees",
            vec![
                Column::new("EmployeeNumber", ValueType::Int),
                Column::new("FirstName", ValueType::Text),
                Column::new("Salary", ValueType::Int),
            ],
        ));
        emp.push_row(vec![
            Value::Int(1),
            Value::Text("John".into()),
            Value::Int(70000),
        ]);
        emp.push_row(vec![
            Value::Int(2),
            Value::Text("Perla".into()),
            Value::Int(80000),
        ]);
        db.add_table(emp);
        let mut sal = Table::new(TableSchema::new(
            "Salaries",
            vec![
                Column::new("EmployeeNumber", ValueType::Int),
                Column::new("salary", ValueType::Int),
            ],
        ));
        sal.push_row(vec![Value::Int(1), Value::Int(70000)]);
        db.add_table(sal);
        db
    }

    fn engine() -> &'static SpeakQl {
        static E: std::sync::OnceLock<SpeakQl> = std::sync::OnceLock::new();
        E.get_or_init(|| SpeakQl::new(&toy_db(), SpeakQlConfig::small()))
    }

    /// Assert-unwrap a transcription result with a readable failure message.
    fn ok(r: SpeakQlResult<Transcription>) -> Transcription {
        match r {
            Ok(t) => t,
            Err(e) => panic!("transcription failed: {e}"),
        }
    }

    /// Assert-unwrap the best candidate SQL.
    fn best(t: &Transcription) -> &str {
        match t.best_sql() {
            Some(s) => s,
            None => panic!("transcription produced no candidates"),
        }
    }

    #[test]
    fn end_to_end_running_example() {
        // Fig. 2: "select sales from employers wear name equals Jon" →
        // SELECT Salary FROM Employees WHERE FirstName = 'John' (our toy
        // schema's nearest equivalents).
        let t = ok(engine().transcribe("select sales from employers wear first name equals jon"));
        assert_eq!(
            best(&t),
            "SELECT Salary FROM Employees WHERE FirstName = 'John'"
        );
    }

    #[test]
    fn perfect_transcript_roundtrips() {
        let t = ok(engine().transcribe("select salary from salaries"));
        // The toy schema has both Employees.Salary and Salaries.salary; the
        // lexicographic tie-break picks the capitalized one.
        assert_eq!(best(&t), "SELECT Salary FROM Salaries");
        assert_eq!(t.candidates[0].distance, 0);
    }

    #[test]
    fn top_k_candidates_ranked() {
        let t = ok(engine().transcribe("select salary from employees"));
        assert_eq!(t.candidates.len(), 5);
        for w in t.candidates.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn clause_level_where_dictation() {
        let t =
            ok(engine().transcribe_clause(ClauseKind::Where, "where salary greater than 70000"));
        let best = best(&t);
        assert!(best.starts_with("WHERE"), "got {best}");
        assert!(best.contains('>'), "got {best}");
    }

    #[test]
    fn clause_level_select_dictation() {
        let t = ok(engine().transcribe_clause(
            ClauseKind::Select,
            "select sum open parenthesis salary close parenthesis",
        ));
        assert_eq!(best(&t), "SELECT SUM ( Salary )");
    }

    #[test]
    fn nested_query_heuristic() {
        let t = ok(engine().transcribe(
            "select first name from employees where employee number in open parenthesis \
             select employee number from salaries where salary greater than 70000 close parenthesis",
        ));
        let best = best(&t);
        assert!(best.contains("IN ( SELECT"), "got: {best}");
        assert!(best.ends_with(')'), "got: {best}");
        // The inner query must itself be well-formed.
        assert!(best.matches("SELECT").count() == 2, "got: {best}");
    }

    #[test]
    fn empty_transcript_is_a_typed_error() {
        assert!(matches!(
            engine().transcribe(""),
            Err(SpeakQlError::EmptyTranscript)
        ));
        assert!(matches!(
            engine().transcribe("   \t  \n "),
            Err(SpeakQlError::EmptyTranscript)
        ));
        assert!(matches!(
            engine().transcribe_clause(ClauseKind::Where, ""),
            Err(SpeakQlError::EmptyTranscript)
        ));
    }

    #[test]
    fn overlong_transcript_is_rejected_up_front() {
        let engine = SpeakQl::new(
            &toy_db(),
            SpeakQlConfig::small().with_max_transcript_words(8),
        );
        let long = "select salary from employees where first name equals john or salary";
        match engine.transcribe(long) {
            Err(SpeakQlError::TranscriptTooLong { words, max }) => {
                assert_eq!(words, 11);
                assert_eq!(max, 8);
            }
            other => panic!("expected TranscriptTooLong, got {other:?}"),
        }
        // At or below the cap the pipeline runs normally.
        let t = ok(engine.transcribe("select salary from employees"));
        assert!(!t.candidates.is_empty());
    }

    #[test]
    fn latency_is_recorded() {
        let t = ok(engine().transcribe("select salary from salaries"));
        assert!(t.elapsed > Duration::ZERO);
    }

    #[test]
    fn stage_timings_are_recorded() {
        let t =
            ok(engine().transcribe("select salary from employees where first name equals john"));
        assert!(t.stages.search > Duration::ZERO);
        assert!(t.stages.literal > Duration::ZERO);
        assert!(t.stages.total() <= t.elapsed);
    }

    fn par_engine() -> &'static SpeakQl {
        static E: std::sync::OnceLock<SpeakQl> = std::sync::OnceLock::new();
        E.get_or_init(|| SpeakQl::new(&toy_db(), SpeakQlConfig::small().with_threads(4)))
    }

    #[test]
    fn parallel_candidate_construction_matches_sequential() {
        for t in [
            "select salary from employees",
            "select sales from employers wear first name equals jon",
            "select first name comma salary from employees order by salary",
        ] {
            let seq = ok(engine().transcribe(t));
            let par = ok(par_engine().transcribe(t));
            assert_eq!(seq.candidates, par.candidates, "transcript: {t:?}");
        }
        // Error classification is thread-count independent too.
        assert!(matches!(
            par_engine().transcribe(""),
            Err(SpeakQlError::EmptyTranscript)
        ));
    }

    #[test]
    fn empty_batch_returns_empty_without_worker_pool() {
        // Regression: an empty slice must short-circuit before the pool is
        // even sized, on both the sequential and the parallel engine.
        assert!(engine().transcribe_batch(&[]).is_empty());
        assert!(par_engine().transcribe_batch(&[]).is_empty());
    }

    #[test]
    fn batch_of_one_matches_single_transcribe() {
        let t = "select salary from employees";
        let mut batch = par_engine().transcribe_batch(&[t]);
        assert_eq!(batch.len(), 1);
        let only = ok(batch.remove(0));
        assert_eq!(only.candidates, ok(engine().transcribe(t)).candidates);
    }

    #[test]
    fn poisoned_transcript_fails_its_own_batch_slot_only() {
        // A fault hook that panics on one marker transcript simulates a
        // pipeline worker blowing up mid-batch.
        let engine = SpeakQl::new(
            &toy_db(),
            SpeakQlConfig::small()
                .with_threads(4)
                .with_fault_hook(FaultHook::new(|t| {
                    assert!(!t.contains("poison"), "injected fault");
                })),
        );
        let transcripts = [
            "select salary from employees",
            "select salary from salaries",
            "select poison from employees",
            "select first name from employees",
            "select employee number from salaries",
        ];
        let batch = engine.transcribe_batch(&transcripts);
        assert_eq!(batch.len(), transcripts.len(), "every slot must be filled");
        for (i, slot) in batch.iter().enumerate() {
            if i == 2 {
                match slot {
                    Err(SpeakQlError::WorkerPanic { message }) => {
                        assert!(message.contains("injected fault"), "{message}");
                    }
                    other => panic!("slot 2 should be WorkerPanic, got {other:?}"),
                }
            } else {
                let t = match slot {
                    Ok(t) => t,
                    Err(e) => panic!("slot {i} should succeed, got {e}"),
                };
                assert_eq!(t.transcript, transcripts[i], "input-order output");
                assert!(!t.candidates.is_empty());
            }
        }
    }

    #[test]
    fn contained_panic_is_a_typed_error_on_single_calls() {
        let engine = SpeakQl::new(
            &toy_db(),
            SpeakQlConfig::small().with_fault_hook(FaultHook::new(|_| panic!("kaboom"))),
        );
        match engine.transcribe("select salary from employees") {
            Err(SpeakQlError::WorkerPanic { message }) => assert_eq!(message, "kaboom"),
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        assert!(matches!(
            engine.transcribe_clause(ClauseKind::Where, "where salary greater than 70000"),
            Err(SpeakQlError::WorkerPanic { .. })
        ));
    }

    #[test]
    fn error_counters_classify_failures() {
        let engine = SpeakQl::new(
            &toy_db(),
            SpeakQlConfig::small()
                .with_observability(true)
                .with_max_transcript_words(4),
        );
        let _ = engine.transcribe("");
        let _ = engine.transcribe("   ");
        let _ = engine.transcribe("select salary from employees where salary");
        let report = engine.report();
        assert_eq!(report.counter(CounterId::ErrorsEmptyTranscript), 2);
        assert_eq!(report.counter(CounterId::ErrorsTranscriptTooLong), 1);
        assert_eq!(report.counter(CounterId::ErrorsEmptyIndex), 0);
        assert_eq!(report.counter(CounterId::ErrorsWorkerPanic), 0);
        // Failed calls never count as completed transcriptions.
        assert_eq!(report.counter(CounterId::Transcriptions), 0);
    }

    fn observed_engine() -> &'static SpeakQl {
        static E: std::sync::OnceLock<SpeakQl> = std::sync::OnceLock::new();
        E.get_or_init(|| SpeakQl::new(&toy_db(), SpeakQlConfig::small().with_observability(true)))
    }

    #[test]
    fn observed_engine_produces_identical_output() {
        for t in [
            "select salary from employees",
            "select sales from employers wear first name equals jon",
        ] {
            let plain = ok(engine().transcribe(t));
            let observed = ok(observed_engine().transcribe(t));
            assert_eq!(plain.candidates, observed.candidates, "transcript: {t:?}");
            assert_eq!(plain.processed, observed.processed, "transcript: {t:?}");
        }
        assert!(matches!(
            observed_engine().transcribe(""),
            Err(SpeakQlError::EmptyTranscript)
        ));
    }

    #[test]
    fn report_reflects_pipeline_work() {
        let engine = SpeakQl::new(&toy_db(), SpeakQlConfig::small().with_observability(true));
        assert!(engine.recorder().is_enabled());
        ok(engine.transcribe("select salary from employees where first name equals john"));
        let report = engine.report();
        assert_eq!(report.counter(CounterId::Transcriptions), 1);
        assert!(report.counter(CounterId::SearchNodesVisited) > 0);
        assert!(report.counter(CounterId::EditDistCells) > 0);
        assert!(report.counter(CounterId::VoteComparisons) > 0);
        assert_eq!(report.counter(CounterId::CandidatesBuilt), 5);
        let search = match report.stage(SpanId::Search) {
            Some(s) => s,
            None => panic!("search stage missing from report"),
        };
        assert_eq!(search.count, 1);
        let walks = match report.stage(SpanId::TrieWalk) {
            Some(s) => s,
            None => panic!("trie-walk stage missing from report"),
        };
        assert!(walks.count > 0);
        // Batch counters stay untouched outside transcribe_batch.
        assert_eq!(report.counter(CounterId::BatchJobs), 0);
    }

    #[test]
    fn disabled_recorder_reports_all_zero() {
        let report = engine().report();
        assert!(!engine().recorder().is_enabled());
        assert!(report.counters.iter().all(|c| c.total == 0));
        assert!(report.stages.iter().all(|s| s.count == 0));
    }

    #[test]
    fn batch_records_queue_waits() {
        let engine = SpeakQl::new(
            &toy_db(),
            SpeakQlConfig::small()
                .with_threads(4)
                .with_observability(true),
        );
        let transcripts = ["select salary from employees"; 6];
        let batch = engine.transcribe_batch(&transcripts);
        assert!(batch.iter().all(|r| r.is_ok()));
        let report = engine.report();
        assert_eq!(report.counter(CounterId::BatchJobs), 6);
        let waits = match report.stage(SpanId::BatchQueueWait) {
            Some(s) => s,
            None => panic!("queue-wait stage missing from report"),
        };
        assert_eq!(waits.count, 6);
        assert_eq!(report.counter(CounterId::Transcriptions), 6);
    }

    #[test]
    fn batch_output_order_matches_input_order() {
        let transcripts = [
            "select salary from employees",
            "select salary from salaries",
            "select first name from employees where salary greater than 70000",
            "",
            "select sales from employers wear first name equals jon",
            "select employee number from salaries",
            "select sum open parenthesis salary close parenthesis from salaries",
        ];
        let batch = par_engine().transcribe_batch(&transcripts);
        assert_eq!(batch.len(), transcripts.len());
        for (slot, t) in batch.iter().zip(&transcripts) {
            match engine().transcribe(t) {
                Ok(seq) => {
                    let b = match slot {
                        Ok(b) => b,
                        Err(e) => panic!("batch slot for {t:?} failed: {e}"),
                    };
                    assert_eq!(b.transcript, *t, "output order must match input order");
                    assert_eq!(b.candidates, seq.candidates, "transcript: {t:?}");
                }
                // The empty transcript's slot carries the same typed error
                // the sequential call returns.
                Err(seq_err) => assert_eq!(slot.as_ref().err(), Some(&seq_err)),
            }
        }
    }
}

#[cfg(test)]
mod config_tests {
    use super::*;
    use speakql_db::{Column, Table, TableSchema, Value, ValueType};

    fn db() -> Database {
        let mut db = Database::new("cfg");
        let mut t = Table::new(TableSchema::new(
            "Employees",
            vec![
                Column::new("Name", ValueType::Text),
                Column::new("Salary", ValueType::Int),
            ],
        ));
        t.push_row(vec![Value::Text("John".into()), Value::Int(70000)]);
        db.add_table(t);
        db
    }

    fn engine_with(search: SearchConfig) -> SpeakQl {
        SpeakQl::new(
            &db(),
            SpeakQlConfig {
                search,
                ..SpeakQlConfig::small()
            },
        )
    }

    /// Assert-unwrap a transcription result with a readable failure message.
    fn ok(r: SpeakQlResult<Transcription>) -> Transcription {
        match r {
            Ok(t) => t,
            Err(e) => panic!("transcription failed: {e}"),
        }
    }

    #[test]
    fn engine_runs_under_every_search_mode() {
        let transcript = "select salary from employees where name equals john";
        let expected = "SELECT Salary FROM Employees WHERE Name = 'John'";
        for (dap, inv) in [(false, false), (true, false), (false, true), (true, true)] {
            let engine = engine_with(SearchConfig {
                k: 3,
                bdb: true,
                dap,
                inv,
                ..SearchConfig::default()
            });
            let t = ok(engine.transcribe(transcript));
            assert_eq!(t.best_sql(), Some(expected), "dap={dap} inv={inv}");
        }
    }

    #[test]
    fn k_controls_candidate_count() {
        for k in [1usize, 2, 5] {
            let engine = engine_with(SearchConfig {
                k,
                ..SearchConfig::default()
            });
            let t = ok(engine.transcribe("select salary from employees"));
            assert_eq!(t.candidates.len(), k);
        }
    }

    #[test]
    fn alternatives_surface_for_ambiguous_literals() {
        let engine = engine_with(SearchConfig::top_k(1));
        // A window containing both attribute sounds: votes split between
        // Name and Salary, so the loser surfaces as a keyboard suggestion.
        let t = ok(engine.transcribe("select salary name from employees"));
        let c = &t.candidates[0];
        let attr = &c.literals[0];
        let mut seen = vec![attr.literal.clone()];
        seen.extend(attr.alternatives.clone());
        assert!(seen.contains(&"Salary".to_string()), "{seen:?}");
        assert!(seen.contains(&"Name".to_string()), "{seen:?}");
    }
}
