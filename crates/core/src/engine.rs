//! The end-to-end SpeakQL engine (paper Fig. 2).
//!
//! `ASR transcription → SplChar handling + masking → structure search →
//! literal determination → ranked SQL candidates`, with clause-level
//! transcription (§5) and the one-level nested-query heuristic (App. F.8).

use crate::cache::SkeletonCache;
use crate::catalog::PhoneticCatalog;
use crate::literal::{FilledLiteral, LiteralConfig, LiteralFinder, WindowEncodings};
use parking_lot::Mutex;
use speakql_db::Database;
use speakql_editdist::{Dist, Weights};
use speakql_grammar::{
    generate_clause_structures, process_transcript, tokenize_transcript, ClauseKind,
    GeneratorConfig, ProcessedTranscript, Structure,
};
use speakql_index::{SearchConfig, SearchHit, StructureIndex};
use speakql_observe::{CounterId, PipelineReport, Recorder, SpanId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SpeakQlConfig {
    /// Structure-space caps for the offline generator (§3.2).
    pub generator: GeneratorConfig,
    /// Search configuration (top-k, BDB/DAP/INV).
    pub search: SearchConfig,
    /// Edit-operation weights (§3.4).
    pub weights: Weights,
    /// Literal-determination window and alternative count (§4).
    pub literal: LiteralConfig,
    /// Worker threads for engine-level parallelism: candidate construction
    /// within one `transcribe` call, and the worker pool behind
    /// [`SpeakQl::transcribe_batch`]. `1` (the default) is fully sequential;
    /// `0` means one worker per available core. Structure-search parallelism
    /// is configured separately via [`SearchConfig::threads`].
    pub threads: usize,
    /// Record pipeline observability metrics (stage latencies, search and
    /// voting work counters) into the engine's [`Recorder`], retrievable via
    /// [`SpeakQl::report`]. `false` (the default) makes every metric hook a
    /// no-op; the transcriptions produced are identical either way.
    pub observe: bool,
    /// Capacity (in entries) of the cross-query [`SkeletonCache`] memoizing
    /// structure-search results by masked skeleton. `0` (the default)
    /// disables caching entirely — every search walks the index, exactly as
    /// before the cache existed. The cache is shared by [`SpeakQl::transcribe`]
    /// and [`SpeakQl::transcribe_batch`]; clause-level transcription never
    /// consults it (clause indexes hold different structure arenas).
    pub cache_capacity: usize,
}

impl SpeakQlConfig {
    /// The paper's configuration: full structure space, top-5 candidates,
    /// BDB on, approximations off.
    pub fn paper() -> SpeakQlConfig {
        SpeakQlConfig {
            generator: GeneratorConfig::paper(),
            search: SearchConfig {
                k: 5,
                ..SearchConfig::default()
            },
            weights: Weights::PAPER,
            literal: LiteralConfig::default(),
            threads: 1,
            observe: false,
            cache_capacity: 0,
        }
    }

    /// Medium structure space — same phenomena, CI-friendly latency.
    pub fn medium() -> SpeakQlConfig {
        SpeakQlConfig {
            generator: GeneratorConfig::medium(),
            ..SpeakQlConfig::paper()
        }
    }

    /// Small structure space for unit tests.
    pub fn small() -> SpeakQlConfig {
        SpeakQlConfig {
            generator: GeneratorConfig::small(),
            ..SpeakQlConfig::paper()
        }
    }

    /// This configuration with `threads` engine workers.
    pub fn with_threads(mut self, threads: usize) -> SpeakQlConfig {
        self.threads = threads;
        self
    }

    /// This configuration with metric recording switched on or off.
    pub fn with_observability(mut self, observe: bool) -> SpeakQlConfig {
        self.observe = observe;
        self
    }

    /// This configuration with a skeleton-result cache of `capacity` entries
    /// (`0` disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> SpeakQlConfig {
        self.cache_capacity = capacity;
        self
    }

    /// The engine worker count this configuration resolves to (`0` = all
    /// cores).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }
}

impl Default for SpeakQlConfig {
    fn default() -> Self {
        SpeakQlConfig::paper()
    }
}

/// One candidate corrected query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The corrected SQL text.
    pub sql: String,
    /// The structure it was built from.
    pub structure: Structure,
    /// Filled literals, one per placeholder.
    pub literals: Vec<FilledLiteral>,
    /// The structure's weighted edit distance from `MaskOut`.
    pub distance: Dist,
}

/// Per-stage wall-clock breakdown of one transcription (Fig. 2's pipeline
/// stages). When candidate construction runs on several workers, `literal`
/// and `render` accumulate across workers, so they measure total work rather
/// than the (shorter) critical path; `tokenize` and `search` are always
/// single measurements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Transcript tokenization, SplChar handling, and masking (§3.3).
    pub tokenize: Duration,
    /// Structure search over the trie index (§3.4).
    pub search: Duration,
    /// Literal determination for every candidate (§4).
    pub literal: Duration,
    /// SQL rendering for every candidate.
    pub render: Duration,
}

impl StageTimings {
    /// Sum of all stage timings.
    pub fn total(&self) -> Duration {
        self.tokenize + self.search + self.literal + self.render
    }
}

impl std::ops::Add for StageTimings {
    type Output = StageTimings;

    fn add(self, rhs: StageTimings) -> StageTimings {
        StageTimings {
            tokenize: self.tokenize + rhs.tokenize,
            search: self.search + rhs.search,
            literal: self.literal + rhs.literal,
            render: self.render + rhs.render,
        }
    }
}

/// The result of transcribing one spoken query.
#[derive(Debug, Clone)]
pub struct Transcription {
    /// The raw input transcript.
    pub transcript: String,
    /// The processed transcript (after SplChar handling and masking).
    pub processed: ProcessedTranscript,
    /// Ranked candidates, best first. Non-empty unless the index is empty.
    pub candidates: Vec<Candidate>,
    /// End-to-end latency of this transcription.
    pub elapsed: Duration,
    /// Per-stage latency breakdown.
    pub stages: StageTimings,
}

impl Transcription {
    /// The best corrected SQL, if any.
    pub fn best_sql(&self) -> Option<&str> {
        self.candidates.first().map(|c| c.sql.as_str())
    }
}

/// The SpeakQL engine: a structure index plus a phonetic catalog.
pub struct SpeakQl {
    index: Arc<StructureIndex>,
    catalog: PhoneticCatalog,
    config: SpeakQlConfig,
    /// Lazily built per-clause indexes for clause-level dictation.
    clause_indexes: Mutex<HashMap<ClauseKind, Arc<StructureIndex>>>,
    /// Pipeline metric registry; a no-op unless [`SpeakQlConfig::observe`].
    recorder: Recorder,
    /// Cross-query skeleton-result cache; `None` unless
    /// [`SpeakQlConfig::cache_capacity`] is non-zero. Only ever consulted for
    /// searches against the main index — clause indexes hold different
    /// structure arenas, so their hits must never share keys with the main
    /// index's.
    skeleton_cache: Option<SkeletonCache>,
}

impl SpeakQl {
    /// Build an engine for a database (generates and indexes the structure
    /// space — expensive for the paper-scale configuration; reuse the engine
    /// across queries).
    pub fn new(db: &Database, config: SpeakQlConfig) -> SpeakQl {
        let index = Arc::new(StructureIndex::from_grammar(
            &config.generator,
            config.weights,
        ));
        SpeakQl::with_index(db, index, config)
    }

    /// Build an engine around a pre-built structure index (lets experiments
    /// share one index across many databases/configs).
    pub fn with_index(db: &Database, index: Arc<StructureIndex>, config: SpeakQlConfig) -> SpeakQl {
        SpeakQl {
            index,
            catalog: PhoneticCatalog::build(db),
            recorder: Recorder::new(config.observe),
            skeleton_cache: (config.cache_capacity > 0)
                .then(|| SkeletonCache::new(config.cache_capacity)),
            config,
            clause_indexes: Mutex::new(HashMap::new()),
        }
    }

    pub fn index(&self) -> &StructureIndex {
        &self.index
    }

    pub fn catalog(&self) -> &PhoneticCatalog {
        &self.catalog
    }

    pub fn config(&self) -> &SpeakQlConfig {
        &self.config
    }

    /// The engine's metric recorder (disabled unless
    /// [`SpeakQlConfig::observe`] was set).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The engine's skeleton-result cache, or `None` when
    /// [`SpeakQlConfig::cache_capacity`] is `0`.
    pub fn skeleton_cache(&self) -> Option<&SkeletonCache> {
        self.skeleton_cache.as_ref()
    }

    /// Snapshot every pipeline counter and stage-latency histogram recorded
    /// so far. All-zero when observability is off.
    pub fn report(&self) -> PipelineReport {
        self.recorder.report()
    }

    /// Transcribe a raw ASR transcript into ranked corrected-SQL candidates.
    /// Applies the nested-query heuristic when the transcript contains a
    /// second SELECT (App. F.8).
    pub fn transcribe(&self, transcript: &str) -> Transcription {
        self.transcribe_one(transcript, false)
    }

    /// Transcribe many transcripts on a bounded worker pool of
    /// [`SpeakQlConfig::threads`] threads. Output order matches input order,
    /// and each result is identical to the corresponding
    /// [`SpeakQl::transcribe`] call — the queries are independent, so this
    /// is pure inter-query parallelism. Within each batch worker, per-call
    /// parallelism (parallel search, parallel candidate construction) is
    /// disabled to avoid oversubscribing the pool.
    pub fn transcribe_batch(&self, transcripts: &[&str]) -> Vec<Transcription> {
        // An empty batch must not spin up (or even size) the worker pool.
        if transcripts.is_empty() {
            return Vec::new();
        }
        let workers = self.config.effective_threads().min(transcripts.len());
        if workers <= 1 {
            return transcripts
                .iter()
                .map(|t| {
                    self.recorder.incr(CounterId::BatchJobs);
                    self.transcribe(t)
                })
                .collect();
        }
        // Queue-wait clock: jobs are submitted all at once, so a job's wait
        // is the time from here until a worker dequeues it.
        let submitted = self.recorder.is_enabled().then(Instant::now);
        let cursor = AtomicUsize::new(0);
        let per_worker: Vec<Vec<(usize, Transcription)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(t) = transcripts.get(i) else { break };
                            if let Some(t0) = submitted {
                                self.recorder
                                    .record_duration(SpanId::BatchQueueWait, t0.elapsed());
                            }
                            self.recorder.incr(CounterId::BatchJobs);
                            done.push((i, self.transcribe_one(t, true)));
                        }
                        done
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("batch worker panicked"))
                .collect()
        });
        let mut slots: Vec<Option<Transcription>> = (0..transcripts.len()).map(|_| None).collect();
        for (i, t) in per_worker.into_iter().flatten() {
            slots[i] = Some(t);
        }
        slots
            .into_iter()
            .map(|t| t.expect("every transcript transcribed"))
            .collect()
    }

    /// One full transcription; `batch_worker` marks calls made from inside
    /// the `transcribe_batch` pool, which must stay single-threaded.
    fn transcribe_one(&self, transcript: &str, batch_worker: bool) -> Transcription {
        let start = Instant::now();
        let words = tokenize_transcript(transcript);
        let t = if let Some(result) = self.try_nested(transcript, &words, start, batch_worker) {
            self.recorder.incr(CounterId::NestedSplits);
            result
        } else {
            let mut t = self.transcribe_words(
                &words,
                &self.index,
                self.skeleton_cache.as_ref(),
                start,
                batch_worker,
            );
            t.transcript = transcript.to_string();
            t
        };
        self.recorder.incr(CounterId::Transcriptions);
        self.recorder.record_duration(SpanId::Transcribe, t.elapsed);
        t
    }

    /// Clause-level transcription (§5): search only the structures of one
    /// clause kind, e.g. re-dictating just the WHERE clause.
    pub fn transcribe_clause(&self, clause: ClauseKind, transcript: &str) -> Transcription {
        let start = Instant::now();
        let index = self.clause_index(clause);
        let words = tokenize_transcript(transcript);
        let mut t = self.transcribe_words(&words, &index, None, start, false);
        t.transcript = transcript.to_string();
        self.recorder.incr(CounterId::Transcriptions);
        self.recorder.record_duration(SpanId::Transcribe, t.elapsed);
        t
    }

    fn clause_index(&self, clause: ClauseKind) -> Arc<StructureIndex> {
        let mut map = self.clause_indexes.lock();
        map.entry(clause)
            .or_insert_with(|| {
                let structures = generate_clause_structures(&self.config.generator, clause);
                Arc::new(StructureIndex::build(structures, self.config.weights))
            })
            .clone()
    }

    /// Core pipeline over pre-tokenized transcript words. `cache` is the
    /// skeleton-result cache to consult for the structure search, or `None`
    /// when the results would not be reusable (clause-level indexes, or
    /// caching disabled).
    fn transcribe_words(
        &self,
        words: &[String],
        index: &StructureIndex,
        cache: Option<&SkeletonCache>,
        start: Instant,
        batch_worker: bool,
    ) -> Transcription {
        let mut stages = StageTimings::default();

        let t0 = Instant::now();
        let processed = process_transcript(words);
        stages.tokenize = t0.elapsed();

        let search_cfg = if batch_worker {
            self.config.search.with_threads(1)
        } else {
            self.config.search
        };
        let t1 = Instant::now();
        let cached = cache.and_then(|c| c.get(&search_cfg, &processed.masked, &self.recorder));
        let hits = match cached {
            Some(hits) => hits,
            None => {
                let (hits, _) =
                    index.search_observed(&processed.masked, &search_cfg, &self.recorder);
                if let Some(c) = cache {
                    c.insert(&search_cfg, &processed.masked, hits.clone(), &self.recorder);
                }
                hits
            }
        };
        stages.search = t1.elapsed();

        let intra = if batch_worker {
            1
        } else {
            self.config.effective_threads()
        };
        // One window-encoding memo per transcription: the top-k candidates
        // repeatedly enumerate the same transcript windows, and the memo is
        // shared across candidate-construction workers.
        let encodings = WindowEncodings::new();
        let candidates = if intra > 1 && hits.len() > 1 {
            // Each hit's literal determination + rendering is independent;
            // build candidates on scoped workers, one chunk per worker, and
            // concatenate in hit order so the output is deterministic.
            let chunk = hits.len().div_ceil(intra.min(hits.len()));
            let per_chunk: Vec<(Vec<Candidate>, StageTimings)> = std::thread::scope(|scope| {
                let handles: Vec<_> = hits
                    .chunks(chunk)
                    .map(|hs| {
                        scope.spawn(|| {
                            let mut st = StageTimings::default();
                            let cs = hs
                                .iter()
                                .map(|&h| {
                                    self.build_candidate(index, &processed, &encodings, h, &mut st)
                                })
                                .collect();
                            (cs, st)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("candidate worker panicked"))
                    .collect()
            });
            let mut cs = Vec::with_capacity(hits.len());
            for (chunk_cs, st) in per_chunk {
                cs.extend(chunk_cs);
                stages.literal += st.literal;
                stages.render += st.render;
            }
            cs
        } else {
            hits.into_iter()
                .map(|hit| self.build_candidate(index, &processed, &encodings, hit, &mut stages))
                .collect()
        };

        self.recorder
            .add(CounterId::CandidatesBuilt, candidates.len() as u64);
        self.recorder
            .record_duration(SpanId::Tokenize, stages.tokenize);
        self.recorder.record_duration(SpanId::Search, stages.search);
        self.recorder
            .record_duration(SpanId::Literal, stages.literal);
        self.recorder.record_duration(SpanId::Render, stages.render);

        Transcription {
            transcript: words.join(" "),
            processed,
            candidates,
            elapsed: start.elapsed(),
            stages,
        }
    }

    /// Build one candidate from a search hit: literal determination plus SQL
    /// rendering, with both stages timed into `stages`.
    fn build_candidate(
        &self,
        index: &StructureIndex,
        processed: &ProcessedTranscript,
        encodings: &WindowEncodings,
        hit: SearchHit,
        stages: &mut StageTimings,
    ) -> Candidate {
        let finder = LiteralFinder::new(&self.catalog, self.config.literal)
            .with_recorder(self.recorder.clone())
            .with_encodings(encodings);
        let structure = index.structure(hit.structure).clone();
        let t0 = Instant::now();
        let literals = finder.fill_aligned(
            &processed.words,
            &processed.masked,
            &structure,
            self.config.weights,
        );
        stages.literal += t0.elapsed();
        let t1 = Instant::now();
        let sql = render_candidate(&structure, &literals);
        stages.render += t1.elapsed();
        Candidate {
            sql,
            structure,
            literals,
            distance: hit.distance,
        }
    }

    /// Nested-query heuristic (App. F.8): if a second SELECT appears, split
    /// the transcript there, transcribe inner and outer independently, and
    /// splice the inner SQL into the placeholder the outer assigned to the
    /// subquery span.
    fn try_nested(
        &self,
        transcript: &str,
        words: &[String],
        start: Instant,
        batch_worker: bool,
    ) -> Option<Transcription> {
        let selects: Vec<usize> = words
            .iter()
            .enumerate()
            .filter(|(_, w)| w.eq_ignore_ascii_case("select"))
            .map(|(i, _)| i)
            .collect();
        if selects.len() < 2 {
            return None;
        }
        let split = selects[1];
        // Guard: a real nested query has a non-trivial inner body and an
        // outer predicate context; two adjacent SELECTs in word soup do not.
        if split < 4 || words.len() - split < 4 {
            return None;
        }
        // The inner query runs to the end, minus a trailing close-paren.
        let mut inner_words: Vec<String> = words[split..].to_vec();
        if matches!(
            inner_words.last().map(String::as_str),
            Some(")") | Some("close")
        ) {
            inner_words.pop();
            if matches!(inner_words.last().map(String::as_str), Some("close")) {
                inner_words.pop();
            }
        }
        // Strip "close parenthesis" / ")" remnants.
        while matches!(
            inner_words.last().map(String::as_str),
            Some("parenthesis") | Some("close") | Some(")")
        ) {
            inner_words.pop();
        }
        // The outer query replaces the subquery span with a sentinel literal
        // inside parentheses.
        let mut outer_words: Vec<String> = words[..split].to_vec();
        // Drop an immediately preceding open-paren (spoken or symbolic) —
        // we re-add it around the sentinel.
        while matches!(
            outer_words.last().map(String::as_str),
            Some("(") | Some("open") | Some("parenthesis")
        ) {
            outer_words.pop();
        }
        const SENTINEL: &str = "subqueryplaceholder";
        outer_words.push("(".to_string());
        outer_words.push(SENTINEL.to_string());
        outer_words.push(")".to_string());

        let cache = self.skeleton_cache.as_ref();
        let inner = self.transcribe_words(
            &inner_words,
            &self.index,
            cache,
            Instant::now(),
            batch_worker,
        );
        let outer = self.transcribe_words(
            &outer_words,
            &self.index,
            cache,
            Instant::now(),
            batch_worker,
        );
        let inner_sql = inner.best_sql()?.to_string();

        // Splice: in each outer candidate, the placeholder whose window
        // contains the sentinel becomes the parenthesized inner query.
        let sentinel_pos = outer.processed.words.iter().position(|w| w == SENTINEL)?;
        let candidates: Vec<Candidate> = outer
            .candidates
            .into_iter()
            .map(|mut c| {
                let target = c
                    .literals
                    .iter()
                    .position(|f| f.window.0 <= sentinel_pos && sentinel_pos < f.window.1)
                    .unwrap_or_else(|| c.literals.len().saturating_sub(1));
                // Subqueries are only valid in value position (`IN (...)` or
                // the right side of a comparison); leave other candidates
                // unspliced rather than render invalid SQL.
                let is_value_slot = c
                    .structure
                    .placeholders
                    .get(target)
                    .map(|p| matches!(p.category, speakql_grammar::LitCategory::Value))
                    .unwrap_or(false);
                if !is_value_slot {
                    return c;
                }
                // Wrap in parentheses only if the structure does not already
                // parenthesize this placeholder (e.g. `IN ( x )`).
                let already_parenthesized = c
                    .structure
                    .var_positions()
                    .nth(target)
                    .map(|(tok_pos, _)| {
                        use speakql_grammar::{SplChar, StructTok};
                        let prev = tok_pos.checked_sub(1).map(|p| c.structure.tokens[p].tok());
                        let next = c.structure.tokens.get(tok_pos + 1).map(|t| t.tok());
                        matches!(prev, Some(StructTok::SplChar(SplChar::LParen)))
                            && matches!(next, Some(StructTok::SplChar(SplChar::RParen)))
                    })
                    .unwrap_or(false);
                if let Some(f) = c.literals.get_mut(target) {
                    f.literal = if already_parenthesized {
                        inner_sql.clone()
                    } else {
                        format!("( {inner_sql} )")
                    };
                    f.alternatives.clear();
                }
                c.sql = render_candidate(&c.structure, &c.literals);
                c
            })
            .collect();

        Some(Transcription {
            transcript: transcript.to_string(),
            processed: outer.processed,
            candidates,
            elapsed: start.elapsed(),
            stages: inner.stages + outer.stages,
        })
    }
}

/// Render a structure with filled literals to SQL text.
fn render_candidate(structure: &Structure, literals: &[FilledLiteral]) -> String {
    let lits: Vec<String> = literals.iter().map(|f| f.literal.clone()).collect();
    let tokens = structure.bind(&lits);
    speakql_grammar::render_tokens(&tokens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use speakql_db::{Column, Table, TableSchema, Value, ValueType};

    fn toy_db() -> Database {
        let mut db = Database::new("toy");
        let mut emp = Table::new(TableSchema::new(
            "Employees",
            vec![
                Column::new("EmployeeNumber", ValueType::Int),
                Column::new("FirstName", ValueType::Text),
                Column::new("Salary", ValueType::Int),
            ],
        ));
        emp.push_row(vec![
            Value::Int(1),
            Value::Text("John".into()),
            Value::Int(70000),
        ]);
        emp.push_row(vec![
            Value::Int(2),
            Value::Text("Perla".into()),
            Value::Int(80000),
        ]);
        db.add_table(emp);
        let mut sal = Table::new(TableSchema::new(
            "Salaries",
            vec![
                Column::new("EmployeeNumber", ValueType::Int),
                Column::new("salary", ValueType::Int),
            ],
        ));
        sal.push_row(vec![Value::Int(1), Value::Int(70000)]);
        db.add_table(sal);
        db
    }

    fn engine() -> &'static SpeakQl {
        static E: std::sync::OnceLock<SpeakQl> = std::sync::OnceLock::new();
        E.get_or_init(|| SpeakQl::new(&toy_db(), SpeakQlConfig::small()))
    }

    #[test]
    fn end_to_end_running_example() {
        // Fig. 2: "select sales from employers wear name equals Jon" →
        // SELECT Salary FROM Employees WHERE FirstName = 'John' (our toy
        // schema's nearest equivalents).
        let t = engine().transcribe("select sales from employers wear first name equals jon");
        let best = t.best_sql().unwrap();
        assert_eq!(
            best,
            "SELECT Salary FROM Employees WHERE FirstName = 'John'"
        );
    }

    #[test]
    fn perfect_transcript_roundtrips() {
        let t = engine().transcribe("select salary from salaries");
        // The toy schema has both Employees.Salary and Salaries.salary; the
        // lexicographic tie-break picks the capitalized one.
        assert_eq!(t.best_sql().unwrap(), "SELECT Salary FROM Salaries");
        assert_eq!(t.candidates[0].distance, 0);
    }

    #[test]
    fn top_k_candidates_ranked() {
        let t = engine().transcribe("select salary from employees");
        assert_eq!(t.candidates.len(), 5);
        for w in t.candidates.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn clause_level_where_dictation() {
        let t = engine().transcribe_clause(ClauseKind::Where, "where salary greater than 70000");
        let best = t.best_sql().unwrap();
        assert!(best.starts_with("WHERE"), "got {best}");
        assert!(best.contains('>'), "got {best}");
    }

    #[test]
    fn clause_level_select_dictation() {
        let t = engine().transcribe_clause(
            ClauseKind::Select,
            "select sum open parenthesis salary close parenthesis",
        );
        assert_eq!(t.best_sql().unwrap(), "SELECT SUM ( Salary )");
    }

    #[test]
    fn nested_query_heuristic() {
        let t = engine().transcribe(
            "select first name from employees where employee number in open parenthesis \
             select employee number from salaries where salary greater than 70000 close parenthesis",
        );
        let best = t.best_sql().unwrap();
        assert!(best.contains("IN ( SELECT"), "got: {best}");
        assert!(best.ends_with(')'), "got: {best}");
        // The inner query must itself be well-formed.
        assert!(best.matches("SELECT").count() == 2, "got: {best}");
    }

    #[test]
    fn empty_transcript_still_returns() {
        let t = engine().transcribe("");
        assert!(!t.candidates.is_empty());
    }

    #[test]
    fn latency_is_recorded() {
        let t = engine().transcribe("select salary from salaries");
        assert!(t.elapsed > Duration::ZERO);
    }

    #[test]
    fn stage_timings_are_recorded() {
        let t = engine().transcribe("select salary from employees where first name equals john");
        assert!(t.stages.search > Duration::ZERO);
        assert!(t.stages.literal > Duration::ZERO);
        assert!(t.stages.total() <= t.elapsed);
    }

    fn par_engine() -> &'static SpeakQl {
        static E: std::sync::OnceLock<SpeakQl> = std::sync::OnceLock::new();
        E.get_or_init(|| SpeakQl::new(&toy_db(), SpeakQlConfig::small().with_threads(4)))
    }

    #[test]
    fn parallel_candidate_construction_matches_sequential() {
        for t in [
            "select salary from employees",
            "select sales from employers wear first name equals jon",
            "select first name comma salary from employees order by salary",
            "",
        ] {
            let seq = engine().transcribe(t);
            let par = par_engine().transcribe(t);
            assert_eq!(seq.candidates, par.candidates, "transcript: {t:?}");
        }
    }

    #[test]
    fn empty_batch_returns_empty_without_worker_pool() {
        // Regression: an empty slice must short-circuit before the pool is
        // even sized, on both the sequential and the parallel engine.
        assert!(engine().transcribe_batch(&[]).is_empty());
        assert!(par_engine().transcribe_batch(&[]).is_empty());
    }

    #[test]
    fn batch_of_one_matches_single_transcribe() {
        let t = "select salary from employees";
        let batch = par_engine().transcribe_batch(&[t]);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].candidates, engine().transcribe(t).candidates);
    }

    fn observed_engine() -> &'static SpeakQl {
        static E: std::sync::OnceLock<SpeakQl> = std::sync::OnceLock::new();
        E.get_or_init(|| SpeakQl::new(&toy_db(), SpeakQlConfig::small().with_observability(true)))
    }

    #[test]
    fn observed_engine_produces_identical_output() {
        for t in [
            "select salary from employees",
            "select sales from employers wear first name equals jon",
            "",
        ] {
            let plain = engine().transcribe(t);
            let observed = observed_engine().transcribe(t);
            assert_eq!(plain.candidates, observed.candidates, "transcript: {t:?}");
            assert_eq!(plain.processed, observed.processed, "transcript: {t:?}");
        }
    }

    #[test]
    fn report_reflects_pipeline_work() {
        let engine = SpeakQl::new(&toy_db(), SpeakQlConfig::small().with_observability(true));
        assert!(engine.recorder().is_enabled());
        engine.transcribe("select salary from employees where first name equals john");
        let report = engine.report();
        assert_eq!(report.counter(CounterId::Transcriptions), 1);
        assert!(report.counter(CounterId::SearchNodesVisited) > 0);
        assert!(report.counter(CounterId::EditDistCells) > 0);
        assert!(report.counter(CounterId::VoteComparisons) > 0);
        assert_eq!(report.counter(CounterId::CandidatesBuilt), 5);
        let search = report.stage(SpanId::Search).unwrap();
        assert_eq!(search.count, 1);
        let walks = report.stage(SpanId::TrieWalk).unwrap();
        assert!(walks.count > 0);
        // Batch counters stay untouched outside transcribe_batch.
        assert_eq!(report.counter(CounterId::BatchJobs), 0);
    }

    #[test]
    fn disabled_recorder_reports_all_zero() {
        let report = engine().report();
        assert!(!engine().recorder().is_enabled());
        assert!(report.counters.iter().all(|c| c.total == 0));
        assert!(report.stages.iter().all(|s| s.count == 0));
    }

    #[test]
    fn batch_records_queue_waits() {
        let engine = SpeakQl::new(
            &toy_db(),
            SpeakQlConfig::small()
                .with_threads(4)
                .with_observability(true),
        );
        let transcripts = ["select salary from employees"; 6];
        engine.transcribe_batch(&transcripts);
        let report = engine.report();
        assert_eq!(report.counter(CounterId::BatchJobs), 6);
        assert_eq!(report.stage(SpanId::BatchQueueWait).unwrap().count, 6);
        assert_eq!(report.counter(CounterId::Transcriptions), 6);
    }

    #[test]
    fn batch_output_order_matches_input_order() {
        let transcripts = [
            "select salary from employees",
            "select salary from salaries",
            "select first name from employees where salary greater than 70000",
            "",
            "select sales from employers wear first name equals jon",
            "select employee number from salaries",
            "select sum open parenthesis salary close parenthesis from salaries",
        ];
        let batch = par_engine().transcribe_batch(&transcripts);
        assert_eq!(batch.len(), transcripts.len());
        for (b, t) in batch.iter().zip(&transcripts) {
            let seq = engine().transcribe(t);
            assert_eq!(b.transcript, *t, "output order must match input order");
            assert_eq!(b.candidates, seq.candidates, "transcript: {t:?}");
        }
    }
}

#[cfg(test)]
mod config_tests {
    use super::*;
    use speakql_db::{Column, Table, TableSchema, Value, ValueType};

    fn db() -> Database {
        let mut db = Database::new("cfg");
        let mut t = Table::new(TableSchema::new(
            "Employees",
            vec![
                Column::new("Name", ValueType::Text),
                Column::new("Salary", ValueType::Int),
            ],
        ));
        t.push_row(vec![Value::Text("John".into()), Value::Int(70000)]);
        db.add_table(t);
        db
    }

    fn engine_with(search: SearchConfig) -> SpeakQl {
        SpeakQl::new(
            &db(),
            SpeakQlConfig {
                search,
                ..SpeakQlConfig::small()
            },
        )
    }

    #[test]
    fn engine_runs_under_every_search_mode() {
        let transcript = "select salary from employees where name equals john";
        let expected = "SELECT Salary FROM Employees WHERE Name = 'John'";
        for (dap, inv) in [(false, false), (true, false), (false, true), (true, true)] {
            let engine = engine_with(SearchConfig {
                k: 3,
                bdb: true,
                dap,
                inv,
                threads: 1,
            });
            let t = engine.transcribe(transcript);
            assert_eq!(t.best_sql(), Some(expected), "dap={dap} inv={inv}");
        }
    }

    #[test]
    fn k_controls_candidate_count() {
        for k in [1usize, 2, 5] {
            let engine = engine_with(SearchConfig {
                k,
                ..SearchConfig::default()
            });
            let t = engine.transcribe("select salary from employees");
            assert_eq!(t.candidates.len(), k);
        }
    }

    #[test]
    fn alternatives_surface_for_ambiguous_literals() {
        let engine = engine_with(SearchConfig::top_k(1));
        // A window containing both attribute sounds: votes split between
        // Name and Salary, so the loser surfaces as a keyboard suggestion.
        let t = engine.transcribe("select salary name from employees");
        let c = &t.candidates[0];
        let attr = &c.literals[0];
        let mut seen = vec![attr.literal.clone()];
        seen.extend(attr.alternatives.clone());
        assert!(seen.contains(&"Salary".to_string()), "{seen:?}");
        assert!(seen.contains(&"Name".to_string()), "{seen:?}");
    }
}
