//! Alignment of `MaskOut` against the chosen structure.
//!
//! The Search Engine already computes the weighted LCS DP between the masked
//! transcript and the winning structure; tracing it back yields, for every
//! placeholder variable, the transcript position it aligned to. Literal
//! Determination uses these anchors to make the paper's window boundary
//! ("RightNonLiteral", Box 3 line 8) precise when several placeholders share
//! one run of non-dictionary tokens.
//!
//! Ties in the traceback prefer insert/delete moves over matches, which
//! pushes every match as early in the transcript as possible — consecutive
//! placeholders then claim disjoint, left-to-right windows.

use speakql_editdist::{Dist, Weights};
use speakql_grammar::{StructTokId, Structure};

/// For each placeholder of `structure` (in order), the masked-transcript
/// index its `Var` token matched, or `None` if the variable was inserted
/// (no transcript token aligns to it).
///
/// Crate-internal: this is a pipeline stage consumed by literal
/// determination, not API surface — all of its DP indexing is
/// bounds-proven only against inputs the engine itself constructs.
pub(crate) fn align_vars(
    masked: &[StructTokId],
    structure: &Structure,
    weights: Weights,
) -> Vec<Option<usize>> {
    let a = masked;
    let b = &structure.tokens;
    let (n, m) = (a.len(), b.len());

    // Full DP matrix (≤ 50×50 — trivial).
    let mut dp = vec![vec![0 as Dist; m + 1]; n + 1];
    for i in 1..=n {
        dp[i][0] = dp[i - 1][0] + weights.of(a[i - 1]);
    }
    for j in 1..=m {
        dp[0][j] = dp[0][j - 1] + weights.of(b[j - 1]);
    }
    for i in 1..=n {
        for j in 1..=m {
            let mut best = Dist::MAX;
            if a[i - 1] == b[j - 1] {
                best = dp[i - 1][j - 1];
            }
            best = best
                .min(dp[i - 1][j] + weights.of(a[i - 1]))
                .min(dp[i][j - 1] + weights.of(b[j - 1]));
            dp[i][j] = best;
        }
    }

    // Traceback, preferring delete (consume transcript) then insert over a
    // match whenever cost-equal, so matches land as early as possible.
    let mut match_of_target: Vec<Option<usize>> = vec![None; m];
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        if i > 0 && dp[i][j] == dp[i - 1][j] + weights.of(a[i - 1]) {
            i -= 1;
            continue;
        }
        if j > 0 && dp[i][j] == dp[i][j - 1] + weights.of(b[j - 1]) {
            j -= 1;
            continue;
        }
        debug_assert!(i > 0 && j > 0 && a[i - 1] == b[j - 1]);
        match_of_target[j - 1] = Some(i - 1);
        i -= 1;
        j -= 1;
    }

    // Project onto the placeholder list.
    structure
        .var_positions()
        .map(|(tok_pos, _)| match_of_target[tok_pos])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use speakql_grammar::{process_transcript_text, Keyword, Placeholder, SplChar, StructTok};

    fn running_structure() -> Structure {
        Structure::new(
            vec![
                StructTok::Keyword(Keyword::Select),
                StructTok::Var,
                StructTok::Keyword(Keyword::From),
                StructTok::Var,
                StructTok::Keyword(Keyword::Where),
                StructTok::Var,
                StructTok::SplChar(SplChar::Eq),
                StructTok::Var,
            ],
            vec![
                Placeholder::attribute(),
                Placeholder::table(),
                Placeholder::attribute(),
                Placeholder::value(Some(2)),
            ],
        )
    }

    #[test]
    fn exact_transcript_aligns_one_to_one() {
        let p = process_transcript_text("select salary from employees where name equals john");
        let anchors = align_vars(&p.masked, &running_structure(), Weights::PAPER);
        assert_eq!(anchors, vec![Some(1), Some(3), Some(5), Some(7)]);
    }

    /// The §2 running example: "wear" and extra literal words pollute the
    /// transcript; earliest-match anchoring still separates x2 from x3.
    #[test]
    fn noisy_transcript_anchors_earliest() {
        let p = process_transcript_text("select sales from employers wear first name equals jon");
        // masked: SELECT x FROM x x x x = x
        let anchors = align_vars(&p.masked, &running_structure(), Weights::PAPER);
        assert_eq!(anchors[0], Some(1)); // sales
        assert_eq!(anchors[1], Some(3)); // employers
        assert_eq!(anchors[2], Some(4)); // wear (earliest possible for x3)
        assert_eq!(anchors[3], Some(8)); // jon
    }

    #[test]
    fn inserted_vars_have_no_anchor() {
        // Transcript shorter than the structure: the trailing vars of the
        // structure get no anchors.
        let p = process_transcript_text("select salary from");
        let anchors = align_vars(&p.masked, &running_structure(), Weights::PAPER);
        assert_eq!(anchors[0], Some(1));
        assert_eq!(anchors[1], None);
        assert_eq!(anchors[2], None);
        assert_eq!(anchors[3], None);
    }

    #[test]
    fn empty_transcript() {
        let anchors = align_vars(&[], &running_structure(), Weights::PAPER);
        assert_eq!(anchors, vec![None; 4]);
    }
}
