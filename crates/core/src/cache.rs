//! Cross-query skeleton-result cache.
//!
//! Spoken query workloads repeat themselves: analysts re-dictate the same
//! query shapes with different literals, and the masking stage collapses all
//! of them onto a small set of `MaskOut` skeletons. Structure search depends
//! only on that skeleton (plus the result-affecting search configuration),
//! so its top-k hits can be memoized across transcriptions: two transcripts
//! with the same masked token sequence get byte-identical [`SearchHit`]s
//! without walking a single trie.
//!
//! The cache is sharded for concurrency (batch workers hit it from many
//! threads) and bounded by an LRU policy per shard. Shard selection uses
//! FNV-1a — a fixed, platform-independent hash — so hit/miss/eviction
//! counts are reproducible run to run, which the CI perf-snapshot gate
//! relies on.
//!
//! Invalidation is structural: hits reference structures by arena id, which
//! is only meaningful for the [`StructureIndex`](speakql_index::StructureIndex)
//! the search ran against, so every key carries that index's
//! [`generation`](speakql_index::StructureIndex::generation). Generations
//! are *content-derived* (a hash of the arena, tombstone flags, and trie
//! segment planes), which makes invalidation exactly as fine-grained as the
//! content changes themselves:
//!
//! - Reloading the same persisted image — or rebuilding the identical
//!   structure space — derives the same generation, so warm entries survive
//!   process restarts and tenant re-registrations instead of going cold
//!   behind a fresh counter value.
//! - Any change that renumbers or reshapes the arena (an
//!   [`IndexDelta`](speakql_index::IndexDelta) with removals, different
//!   weights, a different structure space) derives a different generation,
//!   so stale hits can never be replayed against ids that now mean
//!   something else. Pure appends keep every existing id and keep the
//!   generation only if content is otherwise identical — a delta'd index
//!   gets a new generation and repopulates naturally.
//!
//! A cache shared across engines — the multi-tenant server hands one
//! `Arc<SkeletonCache>` to every engine — therefore lets tenants on the
//! same index content reuse each other's warm results (however each copy
//! was built or loaded), while tenants on different arenas can never
//! collide because their generations differ.

use parking_lot::Mutex;
use speakql_grammar::StructTokId;
use speakql_index::{SearchConfig, SearchHit};
use speakql_observe::{CounterId, Recorder};
use std::collections::HashMap;

/// Upper bound on shard count; more shards than this buys no contention
/// relief at the batch sizes the engine runs.
const MAX_SHARDS: usize = 8;

/// The search-configuration fields that affect which hits a search returns.
/// `threads` and `kernel` are deliberately excluded: parallel search is
/// byte-identical to sequential and the SoA DP kernel is byte-identical to
/// the scalar one, so engines differing only in those mechanism knobs may
/// reuse each other's entries when they share a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ConfigFingerprint {
    k: usize,
    bdb: bool,
    dap: bool,
    inv: bool,
}

impl ConfigFingerprint {
    fn of(cfg: &SearchConfig) -> ConfigFingerprint {
        ConfigFingerprint {
            k: cfg.k,
            bdb: cfg.bdb,
            dap: cfg.dap,
            inv: cfg.inv,
        }
    }
}

/// Cache key: the masked skeleton, the result-affecting config fields, and
/// the arena generation of the index the hits came from.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    generation: u64,
    fp: ConfigFingerprint,
    masked: Vec<StructTokId>,
}

/// One memoized search result with its LRU recency stamp.
#[derive(Debug)]
struct Entry {
    hits: Vec<SearchHit>,
    tick: u64,
}

/// One lock-protected shard: a bounded map with LRU eviction. Shard
/// capacities are small (the whole cache divides its capacity across
/// shards), so the O(shard len) eviction scan is cheaper than maintaining an
/// intrusive list under the same lock.
#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<Key, Entry>,
    clock: u64,
}

impl Shard {
    fn get(&mut self, key: &Key) -> Option<Vec<SearchHit>> {
        self.clock += 1;
        let clock = self.clock;
        let entry = self.entries.get_mut(key)?;
        entry.tick = clock;
        Some(entry.hits.clone())
    }

    fn insert(&mut self, capacity: usize, key: Key, hits: Vec<SearchHit>) -> u64 {
        self.clock += 1;
        let mut evicted = 0;
        // Overwrites refresh in place and never evict.
        if !self.entries.contains_key(&key) {
            while self.entries.len() >= capacity {
                let Some(lru) = self
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.tick)
                    .map(|(k, _)| k.clone())
                else {
                    break;
                };
                self.entries.remove(&lru);
                evicted += 1;
            }
        }
        self.entries.insert(
            key,
            Entry {
                hits,
                tick: self.clock,
            },
        );
        evicted
    }
}

/// A sharded, thread-safe LRU cache from masked skeletons to top-k
/// [`SearchHit`] vectors. See the module docs for the invalidation story.
#[derive(Debug)]
pub struct SkeletonCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry bound; total capacity is `shard_capacity × shards`
    /// (the configured capacity rounded up to a multiple of the shard
    /// count).
    shard_capacity: usize,
}

impl SkeletonCache {
    /// A cache bounded by roughly `capacity` entries (rounded up to a
    /// multiple of the shard count). `capacity` must be at least 1 —
    /// capacity 0 means "no cache", which callers express by not building
    /// one (see [`SpeakQlConfig::cache_capacity`](crate::SpeakQlConfig)).
    pub fn new(capacity: usize) -> SkeletonCache {
        let capacity = capacity.max(1);
        let shards = capacity.min(MAX_SHARDS);
        SkeletonCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity: capacity.div_ceil(shards),
        }
    }

    /// Number of entries currently cached, across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// True when no search result is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up the memoized hits for `masked` under `cfg` against the index
    /// arena identified by `generation`, bumping the LRU stamp and the
    /// hit/miss counters.
    pub fn get(
        &self,
        generation: u64,
        cfg: &SearchConfig,
        masked: &[StructTokId],
        recorder: &Recorder,
    ) -> Option<Vec<SearchHit>> {
        let key = Key {
            generation,
            fp: ConfigFingerprint::of(cfg),
            masked: masked.to_vec(),
        };
        // panic-safe: shard_of reduces modulo shards.len(), so the index
        // is always in bounds.
        let hit = self.shards[self.shard_of(&key)].lock().get(&key);
        recorder.incr(if hit.is_some() {
            CounterId::CacheSkeletonHits
        } else {
            CounterId::CacheSkeletonMisses
        });
        hit
    }

    /// Memoize `hits` for `masked` under `cfg` against the index arena
    /// identified by `generation`, evicting the shard's least-recently-used
    /// entries if it is full (counted in `cache.skeleton_evictions`).
    pub fn insert(
        &self,
        generation: u64,
        cfg: &SearchConfig,
        masked: &[StructTokId],
        hits: Vec<SearchHit>,
        recorder: &Recorder,
    ) {
        let key = Key {
            generation,
            fp: ConfigFingerprint::of(cfg),
            masked: masked.to_vec(),
        };
        // panic-safe: shard_of reduces modulo shards.len(), so the index
        // is always in bounds.
        let evicted =
            self.shards[self.shard_of(&key)]
                .lock()
                .insert(self.shard_capacity, key, hits);
        recorder.add(CounterId::CacheSkeletonEvictions, evicted);
    }

    /// Deterministic shard selection: FNV-1a over the key's stable byte
    /// encoding. `std`'s default hasher is randomly seeded per process,
    /// which would make eviction (and thus the CI-compared counters) vary
    /// run to run.
    fn shard_of(&self, key: &Key) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for b in key.generation.to_le_bytes() {
            eat(b);
        }
        for b in key.fp.k.to_le_bytes() {
            eat(b);
        }
        eat(key.fp.bdb as u8);
        eat(key.fp.dap as u8);
        eat(key.fp.inv as u8);
        for t in &key.masked {
            eat(t.0);
        }
        (h % self.shards.len() as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(structure: u32) -> SearchHit {
        SearchHit {
            structure,
            distance: 0,
        }
    }

    fn skeleton(n: usize) -> Vec<StructTokId> {
        (0..n).map(|i| StructTokId((i % 7) as u8)).collect()
    }

    #[test]
    fn get_returns_what_insert_stored() {
        let cache = SkeletonCache::new(16);
        let cfg = SearchConfig::top_k(5);
        let rec = Recorder::disabled();
        assert!(cache.get(7, &cfg, &skeleton(4), &rec).is_none());
        cache.insert(7, &cfg, &skeleton(4), vec![hit(1), hit(2)], &rec);
        assert_eq!(
            cache.get(7, &cfg, &skeleton(4), &rec),
            Some(vec![hit(1), hit(2)])
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_configs_do_not_collide() {
        let cache = SkeletonCache::new(16);
        let rec = Recorder::disabled();
        let top1 = SearchConfig::top_k(1);
        let top5 = SearchConfig::top_k(5);
        cache.insert(7, &top1, &skeleton(4), vec![hit(1)], &rec);
        assert!(cache.get(7, &top5, &skeleton(4), &rec).is_none());
        let dap = SearchConfig {
            dap: true,
            ..SearchConfig::top_k(1)
        };
        assert!(cache.get(7, &dap, &skeleton(4), &rec).is_none());
        assert_eq!(cache.get(7, &top1, &skeleton(4), &rec), Some(vec![hit(1)]));
    }

    #[test]
    fn thread_count_is_not_part_of_the_key() {
        // Parallel search returns byte-identical hits, so entries are shared
        // across thread configurations.
        let cache = SkeletonCache::new(16);
        let rec = Recorder::disabled();
        let seq = SearchConfig::top_k(5);
        let par = seq.with_threads(8);
        cache.insert(7, &seq, &skeleton(6), vec![hit(3)], &rec);
        assert_eq!(cache.get(7, &par, &skeleton(6), &rec), Some(vec![hit(3)]));
    }

    #[test]
    fn distinct_generations_do_not_collide() {
        // The same skeleton under the same config belongs to two different
        // arenas: each generation sees only its own entry.
        let cache = SkeletonCache::new(16);
        let cfg = SearchConfig::top_k(3);
        let rec = Recorder::disabled();
        cache.insert(1, &cfg, &skeleton(5), vec![hit(10)], &rec);
        cache.insert(2, &cfg, &skeleton(5), vec![hit(20)], &rec);
        assert_eq!(cache.get(1, &cfg, &skeleton(5), &rec), Some(vec![hit(10)]));
        assert_eq!(cache.get(2, &cfg, &skeleton(5), &rec), Some(vec![hit(20)]));
        assert!(cache.get(3, &cfg, &skeleton(5), &rec).is_none());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        // Capacity 2 → 2 shards × 1 entry. Drive one shard with three keys
        // and check the count of survivors; whichever keys collide, total
        // occupancy can never exceed 2 and evictions must be reported.
        let cache = SkeletonCache::new(2);
        let cfg = SearchConfig::top_k(1);
        let rec = Recorder::new(true);
        for n in 1..=6 {
            cache.insert(7, &cfg, &skeleton(n), vec![hit(n as u32)], &rec);
        }
        assert!(cache.len() <= 2);
        assert!(rec.counter(CounterId::CacheSkeletonEvictions) >= 4);
    }

    #[test]
    fn recency_protects_hot_entries() {
        // A single-shard cache of capacity 2: touching A keeps it resident
        // while B is evicted to admit C.
        let cache = SkeletonCache::new(1);
        assert_eq!(cache.shards.len(), 1);
        let cache = SkeletonCache {
            shards: vec![Mutex::new(Shard::default())],
            shard_capacity: 2,
        };
        let cfg = SearchConfig::top_k(1);
        let rec = Recorder::disabled();
        cache.insert(7, &cfg, &skeleton(1), vec![hit(1)], &rec); // A
        cache.insert(7, &cfg, &skeleton(2), vec![hit(2)], &rec); // B
        assert!(cache.get(7, &cfg, &skeleton(1), &rec).is_some()); // touch A
        cache.insert(7, &cfg, &skeleton(3), vec![hit(3)], &rec); // C evicts B
        assert!(cache.get(7, &cfg, &skeleton(1), &rec).is_some());
        assert!(cache.get(7, &cfg, &skeleton(2), &rec).is_none());
        assert!(cache.get(7, &cfg, &skeleton(3), &rec).is_some());
    }

    #[test]
    fn counters_track_hits_misses_and_evictions() {
        let cache = SkeletonCache::new(2);
        let cfg = SearchConfig::top_k(1);
        let rec = Recorder::new(true);
        cache.get(7, &cfg, &skeleton(1), &rec); // miss
        cache.insert(7, &cfg, &skeleton(1), vec![hit(1)], &rec);
        cache.get(7, &cfg, &skeleton(1), &rec); // hit
        assert_eq!(rec.counter(CounterId::CacheSkeletonHits), 1);
        assert_eq!(rec.counter(CounterId::CacheSkeletonMisses), 1);
    }

    #[test]
    fn concurrent_access_is_safe_and_bounded() {
        let cache = SkeletonCache::new(8);
        let cfg = SearchConfig::top_k(3);
        let rec = Recorder::new(true);
        std::thread::scope(|s| {
            for w in 0..4u32 {
                let cache = &cache;
                let cfg = &cfg;
                let rec = rec.clone();
                s.spawn(move || {
                    for i in 0..64u32 {
                        let sk = skeleton(((w * 64 + i) % 13) as usize + 1);
                        if cache.get(7, cfg, &sk, &rec).is_none() {
                            cache.insert(7, cfg, &sk, vec![hit(i)], &rec);
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= 8 + MAX_SHARDS); // capacity, rounded up per shard
        let total =
            rec.counter(CounterId::CacheSkeletonHits) + rec.counter(CounterId::CacheSkeletonMisses);
        assert_eq!(total, 4 * 64);
    }
}
