//! The phonetic catalog: pre-computed phonetic representations of the
//! queried database's table names, attribute names, and attribute values
//! (paper Fig. 2, "Database Metadata").

use speakql_db::Database;
use speakql_grammar::LitCategory;
use speakql_phonetics::{PhoneticAlgorithm, PhoneticIndex};
use std::collections::HashMap;

/// Pre-computed phonetic indexes over one database.
#[derive(Debug, Clone)]
pub struct PhoneticCatalog {
    tables: PhoneticIndex,
    attributes: PhoneticIndex,
    /// Values per attribute name (lower-cased key). Entries hold the
    /// canonical SQL rendering (quoted text/dates) so assignments drop
    /// straight into the corrected query.
    values_by_attr: HashMap<String, PhoneticIndex>,
    all_values: PhoneticIndex,
    algorithm: PhoneticAlgorithm,
}

impl PhoneticCatalog {
    /// Build the catalog for a database with the paper's Metaphone keys.
    pub fn build(db: &Database) -> PhoneticCatalog {
        PhoneticCatalog::build_with(db, PhoneticAlgorithm::Metaphone)
    }

    /// Build with an explicit phonetic algorithm (ablations).
    pub fn build_with(db: &Database, algorithm: PhoneticAlgorithm) -> PhoneticCatalog {
        let tables = PhoneticIndex::build_with(db.table_names(), algorithm);
        let attributes = PhoneticIndex::build_with(db.attribute_names(), algorithm);
        let mut values_by_attr: HashMap<String, PhoneticIndex> = HashMap::new();
        for attr in db.attribute_names() {
            let rendered: Vec<String> = db
                .attribute_values(&attr)
                .iter()
                .map(|v| v.render_sql())
                .collect();
            values_by_attr.insert(
                attr.to_lowercase(),
                PhoneticIndex::build_with(rendered, algorithm),
            );
        }
        let all_values = PhoneticIndex::merged(values_by_attr.values());
        PhoneticCatalog {
            tables,
            attributes,
            values_by_attr,
            all_values,
            algorithm,
        }
    }

    /// The phonetic algorithm the catalog was keyed with.
    pub fn algorithm(&self) -> PhoneticAlgorithm {
        self.algorithm
    }

    /// Phonetic index over table names.
    pub fn tables(&self) -> &PhoneticIndex {
        &self.tables
    }

    /// Phonetic index over attribute (column) names.
    pub fn attributes(&self) -> &PhoneticIndex {
        &self.attributes
    }

    /// Values of one attribute (case-insensitive); `None` if unknown.
    pub fn values_of(&self, attr: &str) -> Option<&PhoneticIndex> {
        self.values_by_attr.get(&attr.to_lowercase())
    }

    /// Phonetic index over every string value of every table.
    pub fn all_values(&self) -> &PhoneticIndex {
        &self.all_values
    }

    /// Retrieve the candidate set `B` for a placeholder (paper §4.1):
    /// its category plus — for values — the governing attribute.
    pub fn candidates(&self, category: LitCategory, governed_attr: Option<&str>) -> &PhoneticIndex {
        match category {
            LitCategory::Table => &self.tables,
            LitCategory::Attribute => &self.attributes,
            LitCategory::Number => &self.all_values,
            LitCategory::Value => governed_attr
                .and_then(|a| self.values_of(a))
                .filter(|idx| !idx.is_empty())
                .unwrap_or(&self.all_values),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speakql_db::{Column, Table, TableSchema, Value, ValueType};

    fn toy() -> Database {
        let mut db = Database::new("toy");
        let mut t = Table::new(TableSchema::new(
            "Employees",
            vec![
                Column::new("FirstName", ValueType::Text),
                Column::new("Salary", ValueType::Int),
            ],
        ));
        t.push_row(vec![Value::Text("John".into()), Value::Int(70000)]);
        t.push_row(vec![Value::Text("Perla".into()), Value::Int(80000)]);
        db.add_table(t);
        db
    }

    #[test]
    fn catalog_has_paper_keys() {
        let cat = PhoneticCatalog::build(&toy());
        assert_eq!(cat.tables().entries()[0].key, "EMPLYS");
        assert!(cat.attributes().entries().iter().any(|e| e.key == "FRSTNM"));
    }

    #[test]
    fn value_entries_are_sql_rendered() {
        let cat = PhoneticCatalog::build(&toy());
        let vals = cat.values_of("firstname").unwrap();
        assert!(vals.entries().iter().any(|e| e.literal == "'John'"));
        let sal = cat.values_of("Salary").unwrap();
        assert!(sal.entries().iter().any(|e| e.literal == "70000"));
    }

    #[test]
    fn candidates_fall_back_to_all_values() {
        let cat = PhoneticCatalog::build(&toy());
        let b = cat.candidates(speakql_grammar::LitCategory::Value, Some("NoSuchAttr"));
        assert_eq!(b.len(), cat.all_values().len());
        let b = cat.candidates(speakql_grammar::LitCategory::Value, Some("FirstName"));
        assert_eq!(b.len(), 2);
    }
}
