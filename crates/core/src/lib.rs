//! # speakql-core
//!
//! The SpeakQL engine — the paper's primary contribution. Composes the
//! substrates into the end-to-end pipeline of Fig. 2:
//!
//! ```text
//! ASR transcript ──> SplChar handling + literal masking   (speakql-grammar)
//!                ──> weighted trie search over structures (speakql-index)
//!                ──> phonetic literal voting               (this crate, §4)
//!                ──> ranked corrected-SQL candidates
//! ```
//!
//! Plus clause-level transcription for the multimodal interface (§5) and the
//! one-level nested-query heuristic (App. F.8).

#![forbid(unsafe_code)]

mod align;
pub mod cache;
pub mod catalog;
pub mod engine;
pub mod error;
pub mod literal;
pub mod streaming;

pub use cache::SkeletonCache;
pub use catalog::PhoneticCatalog;
pub use engine::{Candidate, FaultHook, SpeakQl, SpeakQlConfig, StageTimings, Transcription};
pub use error::{SpeakQlError, SpeakQlResult};
pub use literal::{
    enumerate_strings, enumerate_strings_with, parse_number_words, FilledLiteral, LiteralConfig,
    LiteralFinder, WindowEncodings,
};
pub use streaming::StreamingTranscriber;
// Re-exported so downstream crates can drive observability without a direct
// speakql-observe dependency.
pub use speakql_observe::{CounterId, PipelineReport, Recorder, SpanId, StageReport};

#[cfg(test)]
mod fuzz {
    use super::*;
    use proptest::prelude::*;
    use speakql_db::{Column, Database, Table, TableSchema, Value, ValueType};

    fn engine() -> &'static SpeakQl {
        static E: std::sync::OnceLock<SpeakQl> = std::sync::OnceLock::new();
        E.get_or_init(|| {
            let mut db = Database::new("fuzz");
            let mut t = Table::new(TableSchema::new(
                "T",
                vec![
                    Column::new("A", ValueType::Text),
                    Column::new("B", ValueType::Int),
                ],
            ));
            t.push_row(vec![Value::Text("v".into()), Value::Int(1)]);
            db.add_table(t);
            let cfg = SpeakQlConfig {
                generator: speakql_grammar::GeneratorConfig {
                    max_structures: Some(3_000),
                    ..speakql_grammar::GeneratorConfig::small()
                },
                ..SpeakQlConfig::small()
            };
            SpeakQl::new(&db, cfg)
        })
    }

    fn arb_transcript() -> impl Strategy<Value = String> {
        let word = prop_oneof![
            Just("select".to_string()),
            Just("from".to_string()),
            Just("where".to_string()),
            Just("equals".to_string()),
            Just("less".to_string()),
            Just("than".to_string()),
            Just("open".to_string()),
            Just("parenthesis".to_string()),
            Just("comma".to_string()),
            Just("and".to_string()),
            "[a-z]{1,8}",
            "[0-9]{1,6}",
            Just("(".to_string()),
            Just(")".to_string()),
            Just("=".to_string()),
        ];
        prop::collection::vec(word, 0..22).prop_map(|ws| ws.join(" "))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The engine never panics on arbitrary transcript soup: word-bearing
        /// input always yields candidates, empty input yields the typed
        /// empty-transcript error, and every candidate parses as valid SQL
        /// of the subset.
        #[test]
        fn engine_total_on_arbitrary_transcripts(t in arb_transcript()) {
            match engine().transcribe(&t) {
                Ok(result) => {
                    prop_assert!(!result.candidates.is_empty());
                    for c in &result.candidates {
                        prop_assert!(
                            speakql_db::parse_query(&c.sql).is_ok(),
                            "unparsable candidate for '{}': {}",
                            t,
                            c.sql
                        );
                    }
                }
                Err(e) => {
                    prop_assert_eq!(e, SpeakQlError::EmptyTranscript);
                    prop_assert!(t.split_whitespace().next().is_none());
                }
            }
        }

        /// Candidate SQL token length equals its structure length (every
        /// placeholder bound exactly once).
        #[test]
        fn candidates_fully_bound(t in arb_transcript()) {
            if let Ok(result) = engine().transcribe(&t) {
                for c in &result.candidates {
                    prop_assert_eq!(c.literals.len(), c.structure.var_count());
                }
            }
        }
    }
}
