//! Typed errors for the SpeakQL pipeline.
//!
//! SpeakQL exists to survive *error-ridden* input (the paper's whole
//! premise), so the engine itself must never answer garbage with a process
//! abort: every failure a transcript can provoke is classified into a
//! [`SpeakQlError`] and returned in that transcript's own result slot.
//! Worker panics are contained at the engine boundary
//! ([`SpeakQl::transcribe`](crate::SpeakQl::transcribe) and friends) and
//! surface as [`SpeakQlError::WorkerPanic`]; in a batch, one poisoned
//! transcript yields one `Err` while every other slot completes normally.
//!
//! Each error class has a dedicated `engine.errors.*` counter
//! ([`CounterId`]) so error rates are observable in production reports and
//! gated by the fault-injection CI harness.

use speakql_observe::CounterId;

/// Everything that can go wrong while transcribing one spoken query.
///
/// The classification is deterministic: the same transcript against the same
/// engine configuration always produces the same variant (worker panics
/// included — a panicking input panics on every replay, not just under
/// unlucky scheduling).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpeakQlError {
    /// The transcript contained no words at all (empty or whitespace-only).
    /// There is nothing to search against, so no candidate list — not even a
    /// guessed one — would be meaningful.
    EmptyTranscript,
    /// The transcript exceeded
    /// [`SpeakQlConfig::max_transcript_words`](crate::SpeakQlConfig::max_transcript_words).
    /// The DP search is quadratic in transcript length, so a pathological
    /// input must be rejected up front rather than allowed to monopolize a
    /// worker.
    TranscriptTooLong {
        /// Words in the offending transcript.
        words: usize,
        /// The configured cap it exceeded.
        max: usize,
    },
    /// The structure index holds no structures, so no search can produce a
    /// candidate.
    EmptyIndex,
    /// A pipeline worker panicked; the panic was contained at the engine
    /// boundary and converted into this error instead of unwinding into the
    /// caller (or aborting a whole batch).
    WorkerPanic {
        /// The panic payload's message, when it was a string.
        message: String,
    },
    /// The server's admission queue was full, so the request was shed
    /// instead of queued unboundedly. Overload must degrade into explicit,
    /// fast rejections: an unbounded queue turns a traffic spike into
    /// unbounded tail latency for everyone.
    Overloaded {
        /// Requests already waiting when this one was rejected.
        queued: usize,
        /// The admission queue's configured bound.
        capacity: usize,
    },
    /// The request exceeded its latency budget before a worker could finish
    /// it (typically: it aged out while waiting in the admission queue).
    Timeout {
        /// How long the request had been waiting, in milliseconds.
        waited_ms: u64,
        /// The configured per-request budget, in milliseconds.
        budget_ms: u64,
    },
    /// A persisted structure index failed to load (bad magic, unsupported
    /// version, checksum mismatch, truncation, or structural corruption).
    /// Carries the persist layer's stable error class plus its rendered
    /// message; the `PersistError` itself wraps `io::Error` and so cannot
    /// live in this `Clone + Eq` enum.
    IndexLoad {
        /// Stable class from `PersistError::class()` (`"io"`, `"bad_magic"`,
        /// `"bad_version"`, `"bad_checksum"`, `"corrupt"`, `"too_large"`).
        class: &'static str,
        /// Human-readable detail (the persist error's `Display`).
        message: String,
    },
}

impl SpeakQlError {
    /// Stable machine-readable class name (the suffix of the corresponding
    /// `engine.errors.*` counter).
    pub fn class(&self) -> &'static str {
        match self {
            SpeakQlError::EmptyTranscript => "empty_transcript",
            SpeakQlError::TranscriptTooLong { .. } => "transcript_too_long",
            SpeakQlError::EmptyIndex => "empty_index",
            SpeakQlError::WorkerPanic { .. } => "worker_panic",
            SpeakQlError::Overloaded { .. } => "overloaded",
            SpeakQlError::Timeout { .. } => "timeout",
            SpeakQlError::IndexLoad { .. } => "index_load",
        }
    }

    /// The observability counter incremented when this error is returned.
    pub fn counter(&self) -> CounterId {
        match self {
            SpeakQlError::EmptyTranscript => CounterId::ErrorsEmptyTranscript,
            SpeakQlError::TranscriptTooLong { .. } => CounterId::ErrorsTranscriptTooLong,
            SpeakQlError::EmptyIndex => CounterId::ErrorsEmptyIndex,
            SpeakQlError::WorkerPanic { .. } => CounterId::ErrorsWorkerPanic,
            SpeakQlError::Overloaded { .. } => CounterId::ErrorsOverloaded,
            SpeakQlError::Timeout { .. } => CounterId::ErrorsTimeout,
            SpeakQlError::IndexLoad { .. } => CounterId::ErrorsIndexLoad,
        }
    }
}

impl std::fmt::Display for SpeakQlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpeakQlError::EmptyTranscript => {
                write!(f, "transcript contains no words")
            }
            SpeakQlError::TranscriptTooLong { words, max } => {
                write!(
                    f,
                    "transcript has {words} words, exceeding the cap of {max}"
                )
            }
            SpeakQlError::EmptyIndex => {
                write!(f, "structure index is empty; no candidates can exist")
            }
            SpeakQlError::WorkerPanic { message } => {
                write!(f, "pipeline worker panicked: {message}")
            }
            SpeakQlError::Overloaded { queued, capacity } => {
                write!(
                    f,
                    "server overloaded: {queued} requests queued at capacity {capacity}"
                )
            }
            SpeakQlError::Timeout {
                waited_ms,
                budget_ms,
            } => {
                write!(
                    f,
                    "request timed out after {waited_ms}ms (budget {budget_ms}ms)"
                )
            }
            SpeakQlError::IndexLoad { class, message } => {
                write!(f, "index load failed ({class}): {message}")
            }
        }
    }
}

impl std::error::Error for SpeakQlError {}

/// Extract a human-readable message from a `catch_unwind` payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Result alias for the fallible engine entry points.
pub type SpeakQlResult<T> = Result<T, SpeakQlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SpeakQlError::TranscriptTooLong {
            words: 9000,
            max: 1024,
        };
        let msg = e.to_string();
        assert!(msg.contains("9000") && msg.contains("1024"), "{msg}");
        assert_eq!(e.class(), "transcript_too_long");
    }

    #[test]
    fn classes_and_counters_are_distinct() {
        let errors = [
            SpeakQlError::EmptyTranscript,
            SpeakQlError::TranscriptTooLong { words: 2, max: 1 },
            SpeakQlError::EmptyIndex,
            SpeakQlError::WorkerPanic {
                message: "boom".into(),
            },
            SpeakQlError::Overloaded {
                queued: 8,
                capacity: 8,
            },
            SpeakQlError::Timeout {
                waited_ms: 120,
                budget_ms: 100,
            },
            SpeakQlError::IndexLoad {
                class: "bad_magic",
                message: "not a SpeakQL index file".into(),
            },
        ];
        for (i, a) in errors.iter().enumerate() {
            for b in &errors[i + 1..] {
                assert_ne!(a.class(), b.class());
                assert_ne!(a.counter(), b.counter());
            }
        }
    }

    #[test]
    fn panic_messages_unwrap_common_payloads() {
        let caught = std::panic::catch_unwind(|| panic!("literal str")).expect_err("must panic");
        assert_eq!(panic_message(caught), "literal str");
        let caught =
            std::panic::catch_unwind(|| panic!("formatted {}", 7)).expect_err("must panic");
        assert_eq!(panic_message(caught), "formatted 7");
    }
}
