//! Spoken-English rendering of numbers, dates, and identifiers.
//!
//! The paper's pipeline feeds SQL text to Amazon Polly; Polly "auto converts
//! format 'month-date-year' to spoken dates" and reads numbers out in full.
//! This module is the text side of that conversion: it produces the word
//! sequence a speaker (or Polly) would say for each literal.

/// English words for a non-negative integer ("forty five thousand four
/// hundred twelve" — no "and", matching the paper's example in App. F.6).
pub fn number_to_words(n: u64) -> Vec<String> {
    if n == 0 {
        return vec!["zero".to_string()];
    }
    let mut words = Vec::new();
    let scales: [(u64, &str); 3] = [
        (1_000_000_000, "billion"),
        (1_000_000, "million"),
        (1_000, "thousand"),
    ];
    let mut rest = n;
    for (scale, name) in scales {
        if rest >= scale {
            let group = rest / scale;
            rest %= scale;
            words.extend(hundreds_to_words(group));
            words.push(name.to_string());
        }
    }
    if rest > 0 {
        words.extend(hundreds_to_words(rest));
    }
    words
}

fn hundreds_to_words(n: u64) -> Vec<String> {
    debug_assert!(n < 1000);
    let mut words = Vec::new();
    let h = n / 100;
    let rest = n % 100;
    if h > 0 {
        words.push(ones_word(h).to_string());
        words.push("hundred".to_string());
    }
    if rest > 0 {
        words.extend(tens_to_words(rest));
    }
    words
}

fn tens_to_words(n: u64) -> Vec<String> {
    debug_assert!(n < 100);
    if n < 20 {
        return vec![ones_word(n).to_string()];
    }
    let t = TENS[(n / 10) as usize].to_string();
    if n.is_multiple_of(10) {
        vec![t]
    } else {
        vec![t, ones_word(n % 10).to_string()]
    }
}

const ONES: [&str; 20] = [
    "zero",
    "one",
    "two",
    "three",
    "four",
    "five",
    "six",
    "seven",
    "eight",
    "nine",
    "ten",
    "eleven",
    "twelve",
    "thirteen",
    "fourteen",
    "fifteen",
    "sixteen",
    "seventeen",
    "eighteen",
    "nineteen",
];

const TENS: [&str; 10] = [
    "", "", "twenty", "thirty", "forty", "fifty", "sixty", "seventy", "eighty", "ninety",
];

fn ones_word(n: u64) -> &'static str {
    ONES[n as usize]
}

/// The spoken word for a single digit character. Non-digit input (all
/// callers pre-filter with `is_ascii_digit`) degrades to `"zero"`.
pub fn digit_word(d: char) -> &'static str {
    ONES[d.to_digit(10).unwrap_or(0) as usize]
}

/// Month names, 1-indexed.
pub const MONTHS: [&str; 13] = [
    "",
    "january",
    "february",
    "march",
    "april",
    "may",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
];

/// Ordinal words for days of the month ("twentieth", "thirty first").
pub fn day_ordinal_words(day: u8) -> Vec<String> {
    const ORD_ONES: [&str; 20] = [
        "",
        "first",
        "second",
        "third",
        "fourth",
        "fifth",
        "sixth",
        "seventh",
        "eighth",
        "ninth",
        "tenth",
        "eleventh",
        "twelfth",
        "thirteenth",
        "fourteenth",
        "fifteenth",
        "sixteenth",
        "seventeenth",
        "eighteenth",
        "nineteenth",
    ];
    let day = day as usize;
    if day == 0 || day > 31 {
        return vec!["zeroth".to_string()];
    }
    if day < 20 {
        return vec![ORD_ONES[day].to_string()];
    }
    match day {
        20 => vec!["twentieth".to_string()],
        30 => vec!["thirtieth".to_string()],
        21..=29 => vec!["twenty".to_string(), ORD_ONES[day - 20].to_string()],
        31 => vec!["thirty".to_string(), "first".to_string()],
        _ => unreachable!(),
    }
}

/// Spoken year ("nineteen ninety three", "two thousand one", "twenty ten").
pub fn year_to_words(year: i32) -> Vec<String> {
    let y = year.clamp(0, 9999) as u64;
    if y == 0 {
        return vec!["zero".to_string()];
    }
    if (1000..2000).contains(&y) || (2010..10000).contains(&y) {
        let hi = y / 100;
        let lo = y % 100;
        let mut words = tens_to_words(hi);
        if lo == 0 {
            words.push("hundred".to_string());
        } else if lo < 10 {
            words.push("oh".to_string());
            words.push(ones_word(lo).to_string());
        } else {
            words.extend(tens_to_words(lo));
        }
        words
    } else {
        // 2000–2009 and years below 1000 read as cardinals.
        number_to_words(y)
    }
}

/// Split an identifier into its spoken word parts: camelCase boundaries,
/// underscores (spoken "underscore"), and letter/digit boundaries (digits
/// spoken one at a time, per the paper's `table_123 → table _ 1 2 3`).
pub fn identifier_words(ident: &str) -> Vec<String> {
    let mut words = Vec::new();
    let chars: Vec<char> = ident.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '_' {
            words.push("underscore".to_string());
            i += 1;
        } else if c.is_ascii_digit() {
            words.push(digit_word(c).to_string());
            i += 1;
        } else if c.is_ascii_alphabetic() {
            // A run of letters, split at lower→Upper camel boundaries and
            // before a final Upper followed by lowers (e.g. "HTTPServer").
            let start = i;
            i += 1;
            while i < chars.len() && chars[i].is_ascii_alphabetic() {
                let prev = chars[i - 1];
                let cur = chars[i];
                let upper_after_lower = prev.is_ascii_lowercase() && cur.is_ascii_uppercase();
                let end_of_acronym = prev.is_ascii_uppercase()
                    && cur.is_ascii_uppercase()
                    && chars.get(i + 1).is_some_and(|n| n.is_ascii_lowercase());
                if upper_after_lower || end_of_acronym {
                    break;
                }
                i += 1;
            }
            let word: String = chars[start..i].iter().collect::<String>().to_lowercase();
            words.push(word);
        } else {
            i += 1; // skip quotes, dashes, etc.
        }
    }
    words
}

/// Spoken form of a date: "january twentieth nineteen ninety three".
pub fn date_words(year: i32, month: u8, day: u8) -> Vec<String> {
    let mut words = vec![MONTHS[month.clamp(1, 12) as usize].to_string()];
    words.extend(day_ordinal_words(day));
    words.extend(year_to_words(year));
    words
}

#[cfg(test)]
mod tests {
    use super::*;

    fn joined(v: Vec<String>) -> String {
        v.join(" ")
    }

    #[test]
    fn paper_number_example() {
        // App. F.6: "forty five thousand three hundred ten"
        assert_eq!(
            joined(number_to_words(45310)),
            "forty five thousand three hundred ten"
        );
        assert_eq!(
            joined(number_to_words(45412)),
            "forty five thousand four hundred twelve"
        );
    }

    #[test]
    fn small_numbers() {
        assert_eq!(joined(number_to_words(0)), "zero");
        assert_eq!(joined(number_to_words(7)), "seven");
        assert_eq!(joined(number_to_words(13)), "thirteen");
        assert_eq!(joined(number_to_words(20)), "twenty");
        assert_eq!(joined(number_to_words(21)), "twenty one");
        assert_eq!(joined(number_to_words(100)), "one hundred");
        assert_eq!(joined(number_to_words(70000)), "seventy thousand");
    }

    #[test]
    fn large_numbers() {
        assert_eq!(joined(number_to_words(1_000_001)), "one million one");
        assert_eq!(
            joined(number_to_words(2_147_483_647)),
            "two billion one hundred forty seven million four hundred eighty three thousand six hundred forty seven"
        );
    }

    #[test]
    fn paper_date_example() {
        // Table 1: 1991-05-07 spoken as "may seventh nineteen ninety one"
        assert_eq!(
            joined(date_words(1991, 5, 7)),
            "may seventh nineteen ninety one"
        );
        assert_eq!(
            joined(date_words(1993, 1, 20)),
            "january twentieth nineteen ninety three"
        );
    }

    #[test]
    fn year_forms() {
        assert_eq!(joined(year_to_words(1996)), "nineteen ninety six");
        assert_eq!(joined(year_to_words(2001)), "two thousand one");
        assert_eq!(joined(year_to_words(2015)), "twenty fifteen");
        assert_eq!(joined(year_to_words(1905)), "nineteen oh five");
        assert_eq!(joined(year_to_words(1900)), "nineteen hundred");
    }

    #[test]
    fn day_ordinals() {
        assert_eq!(joined(day_ordinal_words(1)), "first");
        assert_eq!(joined(day_ordinal_words(12)), "twelfth");
        assert_eq!(joined(day_ordinal_words(20)), "twentieth");
        assert_eq!(joined(day_ordinal_words(21)), "twenty first");
        assert_eq!(joined(day_ordinal_words(31)), "thirty first");
    }

    #[test]
    fn identifier_splitting() {
        assert_eq!(identifier_words("FromDate"), vec!["from", "date"]);
        assert_eq!(
            identifier_words("table_123"),
            vec!["table", "underscore", "one", "two", "three"]
        );
        assert_eq!(
            identifier_words("CUSTID_1729A"),
            vec!["custid", "underscore", "one", "seven", "two", "nine", "a"]
        );
        assert_eq!(identifier_words("salary"), vec!["salary"]);
        assert_eq!(
            identifier_words("DepartmentNumber"),
            vec!["department", "number"]
        );
        assert_eq!(identifier_words("d002"), vec!["d", "zero", "zero", "two"]);
        assert_eq!(identifier_words("HTTPServer"), vec!["http", "server"]);
    }
}
