//! Homophone and near-homophone confusions.
//!
//! Table 1 of the paper catalogues ASR homophony in both directions:
//! keywords/splchars become literals (`sum → some`) and literals become
//! keywords (`fromdate → from date`). This module holds the curated
//! confusion table plus generic, *phonetics-preserving* corruptions (vowel
//! substitutions keep the Metaphone key intact, which is exactly the error
//! class Literal Determination can undo).

use rand::Rng;

/// Curated word-level confusions, applied in either direction.
pub const CONFUSIONS: &[(&str, &str)] = &[
    ("sum", "some"),
    ("where", "wear"),
    ("where", "were"),
    ("from", "form"),
    ("by", "buy"),
    ("or", "oar"),
    ("in", "inn"),
    ("and", "an"),
    ("and", "in"), // the paper's NLI-breaking example (App. F.9)
    ("not", "knot"),
    ("min", "men"),
    ("max", "macks"),
    ("join", "joined"),
    ("count", "county"),
    ("salary", "sales"),
    ("salaries", "celeries"),
    ("employees", "employers"),
    ("john", "jon"),
    ("name", "main"),
    ("number", "member"),
    ("gender", "gander"),
    ("title", "tidal"),
    ("first", "fist"),
    ("last", "list"),
    ("birth", "berth"),
    ("hire", "higher"),
    ("review", "revue"),
    ("state", "estate"),
    ("custid", "custody"),
    ("date", "day"),
    ("star", "start"),
    ("equals", "equal"),
];

/// Look up a curated confusion for `word`, if any (deterministic choice
/// among alternatives via `rng`).
pub fn curated_confusion<R: Rng + ?Sized>(word: &str, rng: &mut R) -> Option<String> {
    let lower = word.to_lowercase();
    let hits: Vec<&str> = CONFUSIONS
        .iter()
        .filter_map(|(a, b)| {
            if *a == lower {
                Some(*b)
            } else if *b == lower {
                Some(*a)
            } else {
                None
            }
        })
        .collect();
    if hits.is_empty() {
        None
    } else {
        Some(hits[rng.gen_range(0..hits.len())].to_string())
    }
}

const VOWELS: [char; 5] = ['a', 'e', 'i', 'o', 'u'];

/// Generic corruption of a word, preferring curated confusions, falling back
/// to Metaphone-preserving vowel substitution, plural toggling, or (rarely)
/// a consonant tweak.
pub fn corrupt_word<R: Rng + ?Sized>(word: &str, rng: &mut R) -> String {
    if rng.gen_bool(0.6) {
        if let Some(c) = curated_confusion(word, rng) {
            return c;
        }
    }
    let mut chars: Vec<char> = word.to_lowercase().chars().collect();
    if chars.is_empty() {
        return word.to_string();
    }
    let pick: f64 = rng.gen();
    if pick < 0.22 {
        // Silent-letter respelling: sounds identical (Metaphone-equal) but
        // several character edits away — ASR picks a sound-alike spelling
        // from its language model ("night" for "knight", "phirst" for
        // "first"). This is the error class only the phonetic index undoes.
        let s: String = chars.iter().collect();
        if let Some(r) = silent_respell(&s, rng) {
            return r;
        }
    }
    if pick < 0.6 {
        // Vowel substitution (keeps the Metaphone key).
        let vowel_positions: Vec<usize> = chars
            .iter()
            .enumerate()
            .filter(|(i, c)| VOWELS.contains(c) && *i > 0)
            .map(|(i, _)| i)
            .collect();
        if !vowel_positions.is_empty() {
            let pos = vowel_positions[rng.gen_range(0..vowel_positions.len())];
            let cur = chars[pos];
            let replacement = VOWELS[(VOWELS.iter().position(|&v| v == cur).unwrap_or(0)
                + 1
                + rng.gen_range(0..3usize))
                % 5];
            chars[pos] = replacement;
            return chars.into_iter().collect();
        }
    }
    if pick < 0.85 {
        // Plural toggle.
        let s: String = chars.iter().collect();
        return if let Some(stripped) = s.strip_suffix('s') {
            stripped.to_string()
        } else {
            format!("{s}s")
        };
    }
    // Consonant tweak: swap a common consonant pair.
    const PAIRS: [(char, char); 6] = [
        ('b', 'p'),
        ('d', 't'),
        ('g', 'k'),
        ('v', 'f'),
        ('z', 's'),
        ('m', 'n'),
    ];
    for i in 0..chars.len() {
        for (a, b) in PAIRS {
            if chars[i] == a {
                chars[i] = b;
                return chars.into_iter().collect();
            }
            if chars[i] == b {
                chars[i] = a;
                return chars.into_iter().collect();
            }
        }
    }
    // Nothing applicable: drop the last character.
    chars.pop();
    if chars.is_empty() {
        word.to_string()
    } else {
        chars.into_iter().collect()
    }
}

/// Sound-preserving respelling with silent letters or digraph swaps.
/// Returns `None` when no rule applies.
fn silent_respell<R: Rng + ?Sized>(word: &str, rng: &mut R) -> Option<String> {
    let mut options: Vec<String> = Vec::new();
    if let Some(rest) = word.strip_prefix("kn") {
        options.push(format!("n{rest}"));
    } else if let Some(rest) = word.strip_prefix('n') {
        options.push(format!("kn{rest}"));
    }
    if let Some(rest) = word.strip_prefix('r') {
        options.push(format!("wr{rest}"));
    }
    if word.contains("ph") {
        options.push(word.replacen("ph", "f", 1));
    } else if word.contains('f') {
        options.push(word.replacen('f', "ph", 1));
    }
    if let Some(stem) = word.strip_suffix("te") {
        options.push(format!("{stem}ght"));
    }
    if options.is_empty() {
        None
    } else {
        Some(options[rng.gen_range(0..options.len())].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn silent_respellings_preserve_metaphone() {
        use speakql_phonetics::metaphone;
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for word in ["first", "salary", "name", "rating", "note"] {
            if let Some(r) = silent_respell(word, &mut rng) {
                assert_ne!(r, word);
                // The whole point: sound-alike, several char edits away.
                assert_eq!(metaphone(word), metaphone(&r), "{word} -> {r}");
            }
        }
    }

    #[test]
    fn curated_lookup_both_directions() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(curated_confusion("sum", &mut rng), Some("some".into()));
        assert_eq!(curated_confusion("some", &mut rng), Some("sum".into()));
        assert!(curated_confusion("xyzzy", &mut rng).is_none());
    }

    #[test]
    fn corruption_changes_word() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for word in ["salary", "employees", "department", "todate", "stars"] {
            let c = corrupt_word(word, &mut rng);
            assert_ne!(c, word, "corruption must change the word");
            assert!(!c.is_empty());
        }
    }

    #[test]
    fn vowel_substitution_preserves_metaphone_often() {
        // Spot-check the design intent on a couple of examples where the
        // curated table is bypassed.
        use speakql_phonetics::metaphone;
        assert_eq!(metaphone("department"), metaphone("dipartment"));
        assert_eq!(metaphone("todate"), metaphone("todete"));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = corrupt_word("salary", &mut ChaCha8Rng::seed_from_u64(7));
        let b = corrupt_word("salary", &mut ChaCha8Rng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
