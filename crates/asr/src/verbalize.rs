//! The SQL verbalizer: written SQL → the spoken word sequence.
//!
//! This stands in for the paper's speech-synthesis step (Amazon Polly): each
//! SQL token becomes a *segment* of spoken words, tagged with its origin so
//! the noisy channel can apply the right error model per token class.

use crate::speak::{date_words, identifier_words, number_to_words};
use speakql_grammar::{tokenize_sql, Keyword, SplChar, Token};

/// Where a spoken segment came from in the SQL text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Origin {
    Keyword(Keyword),
    SplChar(SplChar),
    /// An identifier literal (table/attribute name or unquoted value).
    Identifier,
    /// A numeric literal.
    Number,
    /// A date literal (from a quoted `'YYYY-MM-DD'` or bare date).
    Date,
    /// A quoted string value.
    QuotedText,
}

/// One SQL token rendered as speech.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// The spoken words, lower case.
    pub words: Vec<String>,
    pub origin: Origin,
    /// The canonical written form (what a perfect transcription should
    /// recombine to): identifiers keep their casing, values lose quotes.
    pub canonical: String,
}

/// Verbalize a SQL string into spoken segments.
pub fn verbalize_sql(sql: &str) -> Vec<Segment> {
    tokenize_sql(sql).iter().map(verbalize_token).collect()
}

/// Flatten segments to the plain word sequence (what the microphone hears).
pub fn spoken_words(segments: &[Segment]) -> Vec<String> {
    segments
        .iter()
        .flat_map(|s| s.words.iter().cloned())
        .collect()
}

fn verbalize_token(tok: &Token) -> Segment {
    match tok {
        Token::Keyword(k) => Segment {
            words: vec![k.as_str().to_lowercase()],
            origin: Origin::Keyword(*k),
            canonical: k.as_str().to_string(),
        },
        Token::SplChar(c) => Segment {
            words: c.spoken().iter().map(|w| w.to_string()).collect(),
            origin: Origin::SplChar(*c),
            canonical: c.as_str().to_string(),
        },
        Token::Literal(text) => verbalize_literal(text),
    }
}

fn verbalize_literal(text: &str) -> Segment {
    let bare = text
        .strip_prefix('\'')
        .and_then(|s| s.strip_suffix('\''))
        .unwrap_or(text);
    let quoted = bare.len() != text.len();

    // Date?
    if let Some(d) = parse_date(bare) {
        return Segment {
            words: date_words(d.0, d.1, d.2),
            origin: Origin::Date,
            canonical: bare.to_string(),
        };
    }
    // Number?
    if let Ok(n) = bare.parse::<u64>() {
        return Segment {
            words: number_to_words(n),
            origin: Origin::Number,
            canonical: bare.to_string(),
        };
    }
    if let Ok(f) = bare.parse::<f64>() {
        // Decimal: integer part, "point", digits.
        let s = bare.to_string();
        let mut words = Vec::new();
        let (int_part, frac_part) = s.split_once('.').unwrap_or((&s, ""));
        words.extend(number_to_words(int_part.parse().unwrap_or(0)));
        if !frac_part.is_empty() {
            words.push("point".to_string());
            for c in frac_part.chars().filter(|c| c.is_ascii_digit()) {
                words.push(crate::speak::digit_word(c).to_string());
            }
        }
        let _ = f;
        return Segment {
            words,
            origin: Origin::Number,
            canonical: s,
        };
    }
    // Quoted multi-word text: verbalize each whitespace word.
    if quoted && bare.contains(' ') {
        let words = bare.split_whitespace().flat_map(identifier_words).collect();
        return Segment {
            words,
            origin: Origin::QuotedText,
            canonical: bare.to_string(),
        };
    }
    Segment {
        words: identifier_words(bare),
        origin: if quoted {
            Origin::QuotedText
        } else {
            Origin::Identifier
        },
        canonical: bare.to_string(),
    }
}

fn parse_date(s: &str) -> Option<(i32, u8, u8)> {
    let mut parts = s.split('-');
    let y: i32 = parts.next()?.parse().ok()?;
    let m: u8 = parts.next()?.parse().ok()?;
    let d: u8 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some((y, m, d))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speak(sql: &str) -> String {
        spoken_words(&verbalize_sql(sql)).join(" ")
    }

    #[test]
    fn running_example() {
        assert_eq!(
            speak("SELECT Salary FROM Employees WHERE Name = 'John'"),
            "select salary from employees where name equals john"
        );
    }

    #[test]
    fn splchars_spoken() {
        assert_eq!(
            speak("SELECT AVG ( salary ) FROM Salaries"),
            "select avg open parenthesis salary close parenthesis from salaries"
        );
        assert_eq!(speak("SELECT * FROM t"), "select star from t");
        assert_eq!(speak("WHERE a < 5"), "where a less than five");
    }

    #[test]
    fn camel_case_identifiers_split() {
        assert_eq!(
            speak("SELECT FromDate FROM DepartmentEmployee"),
            "select from date from department employee"
        );
    }

    #[test]
    fn dates_spoken() {
        assert_eq!(
            speak("WHERE FromDate = '1993-01-20'"),
            "where from date equals january twentieth nineteen ninety three"
        );
    }

    #[test]
    fn numbers_spoken() {
        assert_eq!(
            speak("WHERE Salary > 70000"),
            "where salary greater than seventy thousand"
        );
        assert_eq!(speak("LIMIT 10"), "limit ten");
        assert_eq!(
            speak("WHERE stars > 3.5"),
            "where stars greater than three point five"
        );
    }

    #[test]
    fn quoted_values() {
        let segs = verbalize_sql("WHERE title = 'Senior Engineer'");
        let Some(last) = segs.last() else {
            panic!("verbalize produced no segments")
        };
        assert_eq!(last.origin, Origin::QuotedText);
        assert_eq!(last.canonical, "Senior Engineer");
        assert_eq!(last.words, vec!["senior", "engineer"]);
    }

    #[test]
    fn segments_carry_canonical_forms() {
        let segs = verbalize_sql("SELECT FromDate FROM t WHERE x = 'd002'");
        assert_eq!(segs[1].canonical, "FromDate");
        let Some(d002) = segs.last() else {
            panic!("verbalize produced no segments")
        };
        assert_eq!(d002.canonical, "d002");
        assert_eq!(d002.words, vec!["d", "zero", "zero", "two"]);
    }

    #[test]
    fn dotted_refs() {
        assert_eq!(
            speak("GROUP BY Employees . Gender"),
            "group by employees dot gender"
        );
    }
}
