//! # speakql-asr
//!
//! The speech substrate of SpeakQL-rs: a SQL **verbalizer** (the role Amazon
//! Polly plays in the paper) and a simulated noisy-channel **ASR engine**
//! (the role of Azure Custom Speech / Google Cloud Speech), reproducing the
//! paper's transcription-error taxonomy (Table 1) with class-dependent,
//! profile-configurable error rates. See DESIGN.md §5 for the substitution
//! rationale.

#![forbid(unsafe_code)]

pub mod channel;
pub mod homophones;
pub mod speak;
pub mod verbalize;

pub use channel::{AsrEngine, AsrProfile, ChannelEvent, ChannelTrace, Vocabulary};
pub use homophones::{corrupt_word, curated_confusion, CONFUSIONS};
pub use speak::{
    date_words, day_ordinal_words, digit_word, identifier_words, number_to_words, year_to_words,
    MONTHS,
};
pub use verbalize::{spoken_words, verbalize_sql, Origin, Segment};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    proptest! {
        /// Verbalizing any number yields words that are non-empty and purely
        /// alphabetic.
        #[test]
        fn number_words_are_words(n in 0u64..10_000_000_000) {
            for w in number_to_words(n) {
                prop_assert!(!w.is_empty());
                prop_assert!(w.chars().all(|c| c.is_ascii_lowercase()));
            }
        }

        /// Identifier splitting loses no alphanumeric content: rejoining the
        /// words (digits spelled out) covers every letter of the input.
        #[test]
        fn identifier_words_cover_letters(ident in "[A-Za-z][A-Za-z0-9_]{0,14}") {
            let words = identifier_words(&ident);
            let letters_in: String = ident
                .chars()
                .filter(|c| c.is_ascii_alphabetic())
                .map(|c| c.to_ascii_lowercase())
                .collect();
            let letters_out: String = words
                .iter()
                .filter(|w| *w != "underscore" && !is_digit_word(w))
                .flat_map(|w| w.chars())
                .collect();
            prop_assert_eq!(letters_in, letters_out);
        }

        /// The channel is a pure function of (input, seed).
        #[test]
        fn channel_deterministic(sql_seed in 0u64..500, chan_seed in 0u64..50) {
            let asr = AsrEngine::new(AsrProfile::acs_trained(), Vocabulary::empty());
            let sql = format!("SELECT a{sql_seed} FROM t WHERE b = {sql_seed}");
            let a = asr.transcribe_sql(&sql, &mut ChaCha8Rng::seed_from_u64(chan_seed));
            let b = asr.transcribe_sql(&sql, &mut ChaCha8Rng::seed_from_u64(chan_seed));
            prop_assert_eq!(a, b);
        }

        /// A perfect channel with full vocabulary reproduces the query's
        /// token content up to case/quoting.
        #[test]
        fn perfect_channel_is_lossless(n in 1u64..100_000) {
            let perfect = AsrProfile {
                name: "perfect",
                keyword_err: 0.0,
                splchar_symbol_rate: 1.0,
                splchar_err: 0.0,
                literal_word_err: 0.0,
                oov_word_err: 0.0,
                recombine_literal: 1.0,
                number_correct: 1.0,
                number_split: 0.0,
                date_correct: 1.0,
                word_drop: 0.0,
            };
            let asr = AsrEngine::new(perfect, Vocabulary::from_literals(["Salaries", "salary"]));
            let sql = format!("SELECT salary FROM Salaries WHERE salary > {n}");
            let t = asr.transcribe_sql(&sql, &mut ChaCha8Rng::seed_from_u64(1));
            prop_assert_eq!(t, format!("select salary from Salaries where salary > {}", n));
        }
    }

    fn is_digit_word(w: &str) -> bool {
        matches!(
            w,
            "zero" | "one" | "two" | "three" | "four" | "five" | "six" | "seven" | "eight" | "nine"
        )
    }
}
