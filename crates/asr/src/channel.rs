//! The simulated ASR engine: a noisy channel over spoken segments.
//!
//! This substitutes for Azure Custom Speech / Google Cloud Speech (see
//! DESIGN.md). The channel reproduces the paper's transcription error
//! taxonomy (Table 1) with class-dependent rates:
//!
//! - homophone swaps in both directions (keyword ↔ literal),
//! - out-of-vocabulary identifiers split into corrupted sub-tokens,
//! - numbers re-grouped ("forty five thousand three hundred ten" → `45000 310`),
//! - dates fragmented ("may 07 19 91"),
//! - spoken special characters emitted as words or symbols.
//!
//! A *custom-trained* profile (the paper trains Azure on 750 Employees
//! queries) carries a [`Vocabulary`] of known literals: their spoken forms
//! are recombined to canonical written forms with high probability, which is
//! exactly why the paper's Employees accuracy beats Yelp's.

use crate::homophones::corrupt_word;
use crate::verbalize::{verbalize_sql, Origin, Segment};
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// Error rates of one ASR configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AsrProfile {
    pub name: &'static str,
    /// Probability a keyword word is mis-transcribed.
    pub keyword_err: f64,
    /// Probability a special character is emitted as its symbol rather than
    /// spoken words (hints / custom models raise this).
    pub splchar_symbol_rate: f64,
    /// Probability a spoken-splchar word is corrupted.
    pub splchar_err: f64,
    /// Per-word corruption probability for in-vocabulary literal words.
    pub literal_word_err: f64,
    /// Per-word corruption probability for out-of-vocabulary words.
    pub oov_word_err: f64,
    /// Probability a known multi-word literal is recombined to its canonical
    /// written form (custom language model behaviour).
    pub recombine_literal: f64,
    /// Probability a spoken number is recombined into one correct numeral.
    pub number_correct: f64,
    /// Given an incorrect number, probability of the re-grouping error (vs a
    /// digit error).
    pub number_split: f64,
    /// Probability a spoken date is recombined into `YYYY-MM-DD`.
    pub date_correct: f64,
    /// Probability any emitted word is dropped outright.
    pub word_drop: f64,
}

impl AsrProfile {
    /// Azure Custom Speech, custom-trained on the Employees training split
    /// (the paper's primary configuration).
    pub fn acs_trained() -> AsrProfile {
        AsrProfile {
            name: "ACS-trained",
            keyword_err: 0.07,
            splchar_symbol_rate: 0.78,
            splchar_err: 0.06,
            literal_word_err: 0.18,
            oov_word_err: 0.60,
            recombine_literal: 0.62,
            number_correct: 0.55,
            number_split: 0.7,
            date_correct: 0.45,
            word_drop: 0.015,
        }
    }

    /// Azure Custom Speech without schema-specific training (what Yelp
    /// queries effectively see for literals — pair with an empty or
    /// off-schema [`Vocabulary`]).
    pub fn acs() -> AsrProfile {
        AsrProfile {
            name: "ACS",
            ..AsrProfile::acs_trained()
        }
    }

    /// Open-domain dictation of natural English (the NLI speech path):
    /// everyday words are well recognized; only rare words and schema/value
    /// terms are at risk. Pair with an empty vocabulary.
    pub fn open_domain() -> AsrProfile {
        AsrProfile {
            name: "open-domain",
            keyword_err: 0.04,
            splchar_symbol_rate: 0.5,
            splchar_err: 0.05,
            literal_word_err: 0.06,
            oov_word_err: 0.35,
            recombine_literal: 0.0,
            number_correct: 0.8,
            number_split: 0.5,
            date_correct: 0.6,
            word_drop: 0.01,
        }
    }

    /// Google Cloud Speech with keyword/splchar hints (App. F.3): splchars
    /// come back as symbols more often, but keywords and literals fare worse
    /// than the custom-trained Azure model.
    pub fn gcs() -> AsrProfile {
        AsrProfile {
            name: "GCS",
            keyword_err: 0.14,
            splchar_symbol_rate: 0.93,
            splchar_err: 0.03,
            literal_word_err: 0.28,
            oov_word_err: 0.6,
            recombine_literal: 0.25,
            number_correct: 0.55,
            number_split: 0.7,
            date_correct: 0.4,
            word_drop: 0.02,
        }
    }
}

/// The custom language model's vocabulary: literals whose spoken forms the
/// ASR can recombine, plus the set of individual known words.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    /// spoken form (lower-case words joined by spaces) → canonical literal.
    literals: HashMap<String, String>,
    /// Individual words the model has seen.
    words: HashSet<String>,
}

impl Vocabulary {
    /// A vocabulary with no known literals or words (an untrained model).
    pub fn empty() -> Vocabulary {
        Vocabulary::default()
    }

    /// Build from canonical literals (identifiers and bare string values).
    pub fn from_literals<I, S>(literals: I) -> Vocabulary
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut v = Vocabulary::default();
        for lit in literals {
            v.insert(lit.as_ref());
        }
        v
    }

    /// Add one canonical literal, registering its spoken form and each of
    /// its constituent words.
    pub fn insert(&mut self, literal: &str) {
        let words = crate::speak::identifier_words(literal);
        for w in &words {
            self.words.insert(w.clone());
        }
        self.literals.insert(words.join(" "), literal.to_string());
    }

    /// True when `word` (case-insensitively) is part of any known literal.
    pub fn contains_word(&self, word: &str) -> bool {
        self.words.contains(&word.to_lowercase())
    }

    /// The canonical literal for a spoken form (lower-case words joined by
    /// spaces), if the model was trained on it.
    pub fn canonical_of(&self, spoken: &str) -> Option<&String> {
        self.literals.get(spoken)
    }

    /// Number of known literals.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// True when no literals are known.
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }
}

/// One observable event inside the noisy channel — the realized error
/// taxonomy (Table 1), exposed for calibration checks and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelEvent {
    KeywordCorrupted,
    SplCharAsSymbol,
    SplCharAsWords,
    SplCharWordCorrupted,
    LiteralRecombined,
    LiteralWordCorrupted,
    NumberCorrect,
    NumberSplit,
    NumberDigitError,
    DateCorrect,
    DateFragmented,
    WordDropped,
}

/// Tally of channel events over one or more transcriptions.
#[derive(Debug, Clone, Default)]
pub struct ChannelTrace {
    counts: std::collections::HashMap<ChannelEvent, u64>,
}

impl ChannelTrace {
    /// Record one realized channel event.
    pub fn record(&mut self, e: ChannelEvent) {
        *self.counts.entry(e).or_insert(0) += 1;
    }

    /// How many times `e` was recorded.
    pub fn count(&self, e: ChannelEvent) -> u64 {
        self.counts.get(&e).copied().unwrap_or(0)
    }

    /// Accumulate another trace's tallies into this one.
    pub fn merge(&mut self, other: &ChannelTrace) {
        for (e, c) in &other.counts {
            *self.counts.entry(*e).or_insert(0) += c;
        }
    }

    /// Realized rate of `num` relative to `num + den` events.
    pub fn rate(&self, num: ChannelEvent, den: ChannelEvent) -> f64 {
        let n = self.count(num) as f64;
        let d = self.count(den) as f64;
        if n + d == 0.0 {
            f64::NAN
        } else {
            n / (n + d)
        }
    }
}

/// The simulated ASR engine.
#[derive(Debug, Clone)]
pub struct AsrEngine {
    pub profile: AsrProfile,
    pub vocab: Vocabulary,
}

impl AsrEngine {
    /// An engine with the given error profile and trained vocabulary.
    pub fn new(profile: AsrProfile, vocab: Vocabulary) -> AsrEngine {
        AsrEngine { profile, vocab }
    }

    /// Transcribe a SQL query: verbalize it, pass it through the channel.
    /// Returns the space-separated transcription (`TransOut`).
    pub fn transcribe_sql<R: Rng + ?Sized>(&self, sql: &str, rng: &mut R) -> String {
        self.transcribe_segments(&verbalize_sql(sql), rng)
    }

    /// Like [`Self::transcribe_sql`], additionally returning the realized
    /// channel events (for calibration checks and debugging).
    pub fn transcribe_sql_traced<R: Rng + ?Sized>(
        &self,
        sql: &str,
        rng: &mut R,
    ) -> (String, ChannelTrace) {
        let mut trace = ChannelTrace::default();
        let mut out: Vec<String> = Vec::new();
        for seg in &verbalize_sql(sql) {
            self.emit_segment(seg, rng, &mut out, &mut trace);
        }
        (out.join(" "), trace)
    }

    /// Transcribe pre-verbalized segments.
    pub fn transcribe_segments<R: Rng + ?Sized>(
        &self,
        segments: &[Segment],
        rng: &mut R,
    ) -> String {
        let mut trace = ChannelTrace::default();
        let mut out: Vec<String> = Vec::new();
        for seg in segments {
            self.emit_segment(seg, rng, &mut out, &mut trace);
        }
        out.join(" ")
    }

    /// Transcribe free natural-language text (used by the NLI comparison):
    /// every word is treated as a literal word of the open domain.
    pub fn transcribe_text<R: Rng + ?Sized>(&self, text: &str, rng: &mut R) -> String {
        let mut out = Vec::new();
        for word in text.split_whitespace() {
            if rng.gen_bool(self.profile.word_drop) {
                continue;
            }
            if word.chars().any(|c| c.is_ascii_digit()) {
                // Numeric/date-like tokens: keep punctuation (dashes), with
                // an occasional digit mis-recognition.
                let clean: String = word
                    .chars()
                    .filter(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '.')
                    .collect();
                if clean.is_empty() {
                    continue;
                }
                if rng.gen_bool(self.profile.literal_word_err / 2.0) {
                    out.push(mutate_digit(&clean, rng));
                } else {
                    out.push(clean);
                }
                continue;
            }
            let clean: String = word.chars().filter(|c| c.is_ascii_alphanumeric()).collect();
            if clean.is_empty() {
                continue;
            }
            if rng.gen_bool(self.profile.literal_word_err) {
                out.push(corrupt_word(&clean, rng));
            } else {
                out.push(clean.to_lowercase());
            }
        }
        out.join(" ")
    }

    fn emit_segment<R: Rng + ?Sized>(
        &self,
        seg: &Segment,
        rng: &mut R,
        out: &mut Vec<String>,
        trace: &mut ChannelTrace,
    ) {
        match &seg.origin {
            Origin::Keyword(_) => {
                if rng.gen_bool(self.profile.word_drop) {
                    trace.record(ChannelEvent::WordDropped);
                    return;
                }
                let word = &seg.words[0];
                if rng.gen_bool(self.profile.keyword_err) {
                    trace.record(ChannelEvent::KeywordCorrupted);
                    out.push(corrupt_word(word, rng));
                } else {
                    out.push(word.clone());
                }
            }
            Origin::SplChar(c) => {
                if rng.gen_bool(self.profile.word_drop) {
                    trace.record(ChannelEvent::WordDropped);
                    return;
                }
                if rng.gen_bool(self.profile.splchar_symbol_rate) {
                    trace.record(ChannelEvent::SplCharAsSymbol);
                    out.push(c.as_str().to_string());
                } else {
                    trace.record(ChannelEvent::SplCharAsWords);
                    for w in &seg.words {
                        if rng.gen_bool(self.profile.splchar_err) {
                            trace.record(ChannelEvent::SplCharWordCorrupted);
                            out.push(corrupt_word(w, rng));
                        } else {
                            out.push(w.clone());
                        }
                    }
                }
            }
            Origin::Identifier | Origin::QuotedText => {
                self.emit_literal(seg, rng, out, trace);
            }
            Origin::Number => {
                self.emit_number(seg, rng, out, trace);
            }
            Origin::Date => {
                self.emit_date(seg, rng, out, trace);
            }
        }
    }

    fn emit_literal<R: Rng + ?Sized>(
        &self,
        seg: &Segment,
        rng: &mut R,
        out: &mut Vec<String>,
        trace: &mut ChannelTrace,
    ) {
        let spoken = seg.words.join(" ");
        // The custom language model recombines known literals into their
        // canonical written form (why `FromDate` survives on Employees).
        if self.vocab.canonical_of(&spoken).is_some()
            && rng.gen_bool(self.profile.recombine_literal)
        {
            trace.record(ChannelEvent::LiteralRecombined);
            out.push(seg.canonical.clone());
            return;
        }
        for w in &seg.words {
            if rng.gen_bool(self.profile.word_drop) {
                trace.record(ChannelEvent::WordDropped);
                continue;
            }
            if w == "underscore" {
                out.push(if rng.gen_bool(0.7) {
                    "_".to_string()
                } else {
                    w.clone()
                });
                continue;
            }
            if let Some(d) = digit_of_word(w) {
                // Digit words come back as digits ("table _ 1 2 3").
                out.push(d.to_string());
                continue;
            }
            let err = if self.vocab.contains_word(w) {
                self.profile.literal_word_err
            } else {
                self.profile.oov_word_err
            };
            if rng.gen_bool(err) {
                trace.record(ChannelEvent::LiteralWordCorrupted);
                out.push(corrupt_word(w, rng));
            } else {
                out.push(w.clone());
            }
        }
    }

    fn emit_number<R: Rng + ?Sized>(
        &self,
        seg: &Segment,
        rng: &mut R,
        out: &mut Vec<String>,
        trace: &mut ChannelTrace,
    ) {
        if rng.gen_bool(self.profile.number_correct) {
            trace.record(ChannelEvent::NumberCorrect);
            out.push(seg.canonical.clone());
            return;
        }
        // Decimal numbers only get digit errors.
        if let Ok(n) = seg.canonical.parse::<u64>() {
            if n >= 1000 && n % 1000 != 0 && rng.gen_bool(self.profile.number_split) {
                // Table 1: "45412" → "45000 412".
                trace.record(ChannelEvent::NumberSplit);
                out.push((n - n % 1000).to_string());
                out.push((n % 1000).to_string());
                return;
            }
        }
        trace.record(ChannelEvent::NumberDigitError);
        out.push(mutate_digit(&seg.canonical, rng));
    }

    fn emit_date<R: Rng + ?Sized>(
        &self,
        seg: &Segment,
        rng: &mut R,
        out: &mut Vec<String>,
        trace: &mut ChannelTrace,
    ) {
        if rng.gen_bool(self.profile.date_correct) {
            trace.record(ChannelEvent::DateCorrect);
            out.push(seg.canonical.clone());
            return;
        }
        trace.record(ChannelEvent::DateFragmented);
        // canonical is YYYY-MM-DD
        let parts: Vec<&str> = seg.canonical.split('-').collect();
        if parts.len() != 3 {
            out.extend(seg.words.iter().cloned());
            return;
        }
        let (y, m, d) = (parts[0], parts[1], parts[2]);
        let month_word = crate::speak::MONTHS
            .get(m.parse::<usize>().unwrap_or(0))
            .copied()
            .unwrap_or("month");
        let style: f64 = rng.gen();
        if style < 0.5 {
            // "may 07 19 91": month word, zero-padded day, fragmented year.
            out.push(month_word.to_string());
            out.push(d.to_string());
            if y.len() == 4 {
                out.push(y[..2].to_string());
                out.push(y[2..].to_string());
            } else {
                out.push(y.to_string());
            }
        } else if style < 0.8 {
            // Partial recombination: "may 7 1991".
            out.push(month_word.to_string());
            out.push(d.trim_start_matches('0').to_string());
            out.push(y.to_string());
        } else {
            // No recombination at all: raw words survive.
            out.extend(seg.words.iter().cloned());
        }
    }
}

fn digit_of_word(w: &str) -> Option<u8> {
    const DIGITS: [&str; 10] = [
        "zero", "one", "two", "three", "four", "five", "six", "seven", "eight", "nine",
    ];
    DIGITS.iter().position(|d| *d == w).map(|p| p as u8)
}

fn mutate_digit<R: Rng + ?Sized>(numeral: &str, rng: &mut R) -> String {
    let mut chars: Vec<char> = numeral.chars().collect();
    let digit_positions: Vec<usize> = chars
        .iter()
        .enumerate()
        .filter(|(_, c)| c.is_ascii_digit())
        .map(|(i, _)| i)
        .collect();
    if digit_positions.is_empty() {
        return numeral.to_string();
    }
    let pos = digit_positions[rng.gen_range(0..digit_positions.len())];
    // `pos` indexes an ascii digit and `new` is < 10, so both conversions
    // always succeed; the fallbacks leave the numeral unchanged.
    let old = chars[pos].to_digit(10).unwrap_or(0);
    let new = (old + rng.gen_range(1..10u32)) % 10;
    chars[pos] = char::from_digit(new, 10).unwrap_or(chars[pos]);
    chars.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn perfect_profile() -> AsrProfile {
        AsrProfile {
            name: "perfect",
            keyword_err: 0.0,
            splchar_symbol_rate: 1.0,
            splchar_err: 0.0,
            literal_word_err: 0.0,
            oov_word_err: 0.0,
            recombine_literal: 1.0,
            number_correct: 1.0,
            number_split: 0.0,
            date_correct: 1.0,
            word_drop: 0.0,
        }
    }

    fn vocab() -> Vocabulary {
        Vocabulary::from_literals(["Salaries", "Employees", "FromDate", "salary", "d002"])
    }

    #[test]
    fn perfect_channel_recombines_everything() {
        let asr = AsrEngine::new(perfect_profile(), vocab());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = asr.transcribe_sql(
            "SELECT AVG ( salary ) FROM Salaries WHERE FromDate = '1993-01-20'",
            &mut rng,
        );
        assert_eq!(
            t,
            "select avg ( salary ) from Salaries where FromDate = 1993-01-20"
        );
    }

    #[test]
    fn zero_symbol_rate_speaks_splchars() {
        let mut p = perfect_profile();
        p.splchar_symbol_rate = 0.0;
        let asr = AsrEngine::new(p, vocab());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = asr.transcribe_sql("SELECT * FROM Employees", &mut rng);
        assert_eq!(t, "select star from Employees");
    }

    #[test]
    fn oov_identifiers_split_into_pieces() {
        let mut p = perfect_profile();
        p.recombine_literal = 0.0;
        let asr = AsrEngine::new(p, Vocabulary::empty());
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let t = asr.transcribe_sql("SELECT x FROM table_123", &mut rng);
        assert_eq!(t, "select x from table _ 1 2 3");
    }

    #[test]
    fn number_split_error_matches_table1() {
        let mut p = perfect_profile();
        p.number_correct = 0.0;
        p.number_split = 1.0;
        let asr = AsrEngine::new(p, vocab());
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let t = asr.transcribe_sql("SELECT a FROM t WHERE b = 45412", &mut rng);
        assert!(t.ends_with("45000 412"), "got: {t}");
    }

    #[test]
    fn date_error_fragments() {
        let mut p = perfect_profile();
        p.date_correct = 0.0;
        let asr = AsrEngine::new(p, vocab());
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let t = asr.transcribe_sql("SELECT a FROM t WHERE b = '1991-05-07'", &mut rng);
        assert!(t.contains("may") || t.contains("seventh"), "got: {t}");
        assert!(!t.contains("1991-05-07"));
    }

    #[test]
    fn noisy_channel_is_deterministic_per_seed() {
        let asr = AsrEngine::new(AsrProfile::acs_trained(), vocab());
        let sql = "SELECT Lastname FROM Employees WHERE Salary > 70000";
        let a = asr.transcribe_sql(sql, &mut ChaCha8Rng::seed_from_u64(9));
        let b = asr.transcribe_sql(sql, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn profiles_order_keyword_quality() {
        // Statistically: ACS-trained corrupts fewer keywords than GCS.
        let vocab = vocab();
        let sql = "SELECT a FROM t WHERE b = c AND d = e OR f = g";
        let count_kw = |engine: &AsrEngine, seed_base: u64| {
            let mut hits = 0usize;
            for s in 0..200 {
                let mut rng = ChaCha8Rng::seed_from_u64(seed_base + s);
                let t = engine.transcribe_sql(sql, &mut rng);
                hits += t
                    .split_whitespace()
                    .filter(|w| ["select", "from", "where", "and", "or"].contains(w))
                    .count();
            }
            hits
        };
        let acs = AsrEngine::new(AsrProfile::acs_trained(), vocab.clone());
        let gcs = AsrEngine::new(AsrProfile::gcs(), vocab);
        assert!(count_kw(&acs, 0) > count_kw(&gcs, 10_000));
    }

    #[test]
    fn transcribe_text_corrupts_nl() {
        let asr = AsrEngine::new(AsrProfile::gcs(), Vocabulary::empty());
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let t = asr.transcribe_text("what is the average salary of all employees?", &mut rng);
        assert!(!t.is_empty());
        assert!(!t.contains('?'));
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn trace_records_realized_events() {
        let asr = AsrEngine::new(
            AsrProfile::acs_trained(),
            Vocabulary::from_literals(["Salaries"]),
        );
        let mut merged = ChannelTrace::default();
        for seed in 0..200u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let (_, trace) = asr.transcribe_sql_traced(
                "SELECT SUM ( salary ) FROM Salaries WHERE FromDate = '1993-01-20' LIMIT 45412",
                &mut rng,
            );
            merged.merge(&trace);
        }
        // Every event family the query can exercise should be observed.
        assert!(merged.count(ChannelEvent::SplCharAsSymbol) > 0);
        assert!(merged.count(ChannelEvent::SplCharAsWords) > 0);
        assert!(merged.count(ChannelEvent::LiteralRecombined) > 0);
        assert!(merged.count(ChannelEvent::LiteralWordCorrupted) > 0);
        assert!(merged.count(ChannelEvent::NumberSplit) > 0);
        assert!(merged.count(ChannelEvent::DateFragmented) > 0);
        // Realized rates track the configured profile within a loose band.
        let splchar_sym = merged.rate(ChannelEvent::SplCharAsSymbol, ChannelEvent::SplCharAsWords);
        assert!(
            (splchar_sym - asr.profile.splchar_symbol_rate).abs() < 0.08,
            "{splchar_sym}"
        );
        let date_ok = merged.rate(ChannelEvent::DateCorrect, ChannelEvent::DateFragmented);
        assert!(
            (date_ok - asr.profile.date_correct).abs() < 0.1,
            "{date_ok}"
        );
    }

    #[test]
    fn traced_and_untraced_outputs_agree() {
        let asr = AsrEngine::new(AsrProfile::acs_trained(), Vocabulary::empty());
        let sql = "SELECT a FROM t WHERE b = 'x'";
        let plain = asr.transcribe_sql(sql, &mut ChaCha8Rng::seed_from_u64(5));
        let (traced, _) = asr.transcribe_sql_traced(sql, &mut ChaCha8Rng::seed_from_u64(5));
        assert_eq!(plain, traced);
    }
}
