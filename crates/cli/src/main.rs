//! `speakql` — command-line front end for SpeakQL-rs.
//!
//! ```text
//! speakql transcribe "select sales from employers wear name equals jon"
//! speakql speak "SELECT AVG ( salary ) FROM Salaries" --seed 7
//! speakql dataset 20
//! speakql index-build /tmp/structures.sqlx --scale medium
//! speakql schema
//! ```
//!
//! All subcommands run against the built-in Employees database; this tool is
//! the scriptable counterpart of the `interactive_repl` example.

#![forbid(unsafe_code)]

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use speakql_asr::{AsrEngine, AsrProfile};
use speakql_core::{SpeakQl, SpeakQlConfig};
use speakql_data::{employees_db, generate_cases, training_vocabulary};
use speakql_grammar::GeneratorConfig;
use speakql_server::{Server, ServerConfig, TenantRegistry};
use std::process::ExitCode;

const USAGE: &str = "\
speakql — speech-driven SQL correction (SpeakQL-rs)

USAGE:
  speakql transcribe <transcript...> [--threads N] [--cache N] [--index-cache FILE] [--report FILE]
                                            correct an ASR transcript and execute it
  speakql transcribe --batch <file> [--threads N] [--cache N] [--index-cache FILE] [--report FILE]
                                            correct one transcript per line of <file>
                                            on N worker threads (0 = all cores);
                                            emits TSV of (transcript, corrected SQL).
                                            --cache N enables the cross-query
                                            skeleton-result cache with N entries
                                            (0 = off, the default).
                                            --index-cache FILE loads the structure
                                            index zero-copy from FILE if it exists,
                                            else builds it and persists it there
                                            for the next run.
                                            --report writes a JSON pipeline
                                            observability report (stage latency
                                            percentiles + work counters) to FILE
  speakql speak <sql...> [--seed N]         verbalize SQL, simulate noisy ASR, correct it
  speakql dataset <n> [--seed N] [--transcripts]
                                            print n generated spoken-SQL cases;
                                            with --transcripts, emit TSV of
                                            (sql, spoken words, ASR transcript)
  speakql index-build <path> [--scale S]    build and persist the structure index
                                            (S = small | medium | paper)
  speakql index-info <path>                 inspect a persisted structure index
  speakql serve [--addr A] [--workers N] [--queue N] [--timeout-ms N] [--cache N]
                                            run the multi-tenant correction server
                                            (tenants: employees, yelp) on A
                                            (default 127.0.0.1:5717) with N workers
                                            (default 4), an N-slot admission queue
                                            (default 64), an N ms per-request budget
                                            (default 30000), and an N-entry shared
                                            skeleton cache (default 1024)
  speakql schema                            print the Employees schema

The engine scale defaults to 'small' for instant startup; set
SPEAKQL_SCALE=medium|paper for the larger structure spaces.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match cmd.as_str() {
        "transcribe" => cmd_transcribe(&args[1..]),
        "speak" => cmd_speak(&args[1..]),
        "dataset" => cmd_dataset(&args[1..]),
        "index-build" => cmd_index_build(&args[1..]),
        "index-info" => cmd_index_info(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "schema" => cmd_schema(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command: {other}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn scale_config() -> GeneratorConfig {
    match std::env::var("SPEAKQL_SCALE").as_deref() {
        Ok("paper") => GeneratorConfig::paper(),
        Ok("medium") => GeneratorConfig::medium(),
        _ => GeneratorConfig::small(),
    }
}

/// Split off a `--flag value` pair from free-form args.
fn take_flag(args: &[String], flag: &str) -> (Vec<String>, Option<String>) {
    let mut rest = Vec::new();
    let mut value = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag && i + 1 < args.len() {
            value = Some(args[i + 1].clone());
            i += 2;
        } else {
            rest.push(args[i].clone());
            i += 1;
        }
    }
    (rest, value)
}

fn engine() -> SpeakQl {
    engine_with(1, false, 0)
}

fn engine_with(threads: usize, observe: bool, cache: usize) -> SpeakQl {
    engine_with_index_cache(threads, observe, cache, None)
}

/// Build the CLI engine, optionally through a persisted index cache: when
/// `index_cache` names an existing file it is loaded through the zero-copy
/// validate-then-borrow path (no structure regeneration, no trie rebuild);
/// otherwise the engine generates the structure space and persists the
/// index there for the next invocation. A cache that fails to load is
/// reported with its typed error class and rebuilt in place.
fn engine_with_index_cache(
    threads: usize,
    observe: bool,
    cache: usize,
    index_cache: Option<&str>,
) -> SpeakQl {
    let db = employees_db();
    let config = SpeakQlConfig {
        generator: scale_config(),
        ..SpeakQlConfig::paper()
    }
    .with_threads(threads)
    .with_observability(observe)
    .with_cache_capacity(cache);
    if let Some(path) = index_cache {
        if std::path::Path::new(path).exists() {
            eprintln!("[speakql] loading index cache {path} ...");
            match SpeakQl::with_persisted_index(&db, path, config.clone()) {
                Ok(engine) => return engine,
                Err(e) => {
                    eprintln!("[speakql] index cache unusable ({}): {e}", e.class());
                    eprintln!("[speakql] rebuilding and replacing {path}");
                }
            }
        }
    }
    eprintln!("[speakql] building engine ...");
    let engine = SpeakQl::new(&db, config);
    if let Some(path) = index_cache {
        match speakql_index::save_to_path(engine.index(), path) {
            Ok(()) => eprintln!("[speakql] index cache written to {path}"),
            Err(e) => eprintln!("[speakql] could not write index cache {path}: {e}"),
        }
    }
    engine
}

/// Write the engine's observability report as JSON to `path`.
fn write_report(engine: &SpeakQl, path: &str) -> bool {
    match std::fs::write(path, engine.report().to_json()) {
        Ok(()) => {
            eprintln!("[speakql] observability report written to {path}");
            true
        }
        Err(e) => {
            eprintln!("error writing report to {path}: {e}");
            false
        }
    }
}

fn show_result(result: &speakql_core::SpeakQlResult<speakql_core::Transcription>) -> ExitCode {
    // A typed pipeline error (empty transcript, over-long input, contained
    // worker fault) is a clean failure exit, never a panic.
    let result = match result {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(best) = result.best_sql() else {
        eprintln!("no candidates");
        return ExitCode::FAILURE;
    };
    println!("corrected : {best}");
    for (i, c) in result.candidates.iter().enumerate().skip(1).take(2) {
        println!("  alt #{i}  : {}", c.sql);
    }
    let db = employees_db();
    match speakql_db::execute_sql(&db, best) {
        Ok(rows) => {
            let shown = rows.rows.len().min(10);
            let preview = speakql_db::QueryResult {
                columns: rows.columns.clone(),
                rows: rows.rows[..shown].to_vec(),
            };
            println!("{}", preview.render_table());
            if rows.rows.len() > shown {
                println!("... {} more row(s)", rows.rows.len() - shown);
            }
        }
        Err(e) => eprintln!("(query does not execute on Employees: {e})"),
    }
    ExitCode::SUCCESS
}

fn cmd_transcribe(args: &[String]) -> ExitCode {
    let (rest, threads) = take_flag(args, "--threads");
    let (rest, batch) = take_flag(&rest, "--batch");
    let (rest, cache) = take_flag(&rest, "--cache");
    let (rest, report) = take_flag(&rest, "--report");
    let (rest, index_cache) = take_flag(&rest, "--index-cache");
    let threads: usize = threads.and_then(|s| s.parse().ok()).unwrap_or(1);
    let cache: usize = cache.and_then(|s| s.parse().ok()).unwrap_or(0);
    if let Some(path) = batch {
        return cmd_transcribe_batch(
            &path,
            threads,
            cache,
            report.as_deref(),
            index_cache.as_deref(),
        );
    }
    if rest.is_empty() {
        eprintln!(
            "usage: speakql transcribe <transcript...> [--threads N] [--cache N] [--index-cache FILE] [--batch <file>] [--report FILE]"
        );
        return ExitCode::from(2);
    }
    let transcript = rest.join(" ");
    let engine = engine_with_index_cache(threads, report.is_some(), cache, index_cache.as_deref());
    let result = engine.transcribe(&transcript);
    println!("heard     : {transcript}");
    let code = show_result(&result);
    if let Some(path) = report {
        if !write_report(&engine, &path) {
            return ExitCode::FAILURE;
        }
    }
    code
}

/// Batch mode: one transcript per line, corrected on the engine's worker
/// pool, output order matching input order.
fn cmd_transcribe_batch(
    path: &str,
    threads: usize,
    cache: usize,
    report: Option<&str>,
    index_cache: Option<&str>,
) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let lines: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect();
    if lines.is_empty() {
        eprintln!("no transcripts in {path}");
        return ExitCode::FAILURE;
    }
    let engine = engine_with_index_cache(threads, report.is_some(), cache, index_cache);
    let start = std::time::Instant::now();
    let results = engine.transcribe_batch(&lines);
    let elapsed = start.elapsed();
    let mut errors = 0usize;
    for (transcript, result) in lines.iter().zip(&results) {
        match result {
            Ok(t) => println!("{}\t{}", transcript, t.best_sql().unwrap_or("")),
            // Per-slot containment: a failed transcript reports its error
            // class in its own output row and the batch keeps going.
            Err(e) => {
                errors += 1;
                println!("{}\t<error: {}>", transcript, e.class());
            }
        }
    }
    if errors > 0 {
        eprintln!("[speakql] {errors} transcript(s) failed");
    }
    eprintln!(
        "[speakql] {} transcript(s) in {:.3}s on {} thread(s)",
        lines.len(),
        elapsed.as_secs_f64(),
        engine.config().effective_threads()
    );
    if let Some(path) = report {
        if !write_report(&engine, path) {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn cmd_speak(args: &[String]) -> ExitCode {
    let (rest, seed) = take_flag(args, "--seed");
    if rest.is_empty() {
        eprintln!("usage: speakql speak <sql...> [--seed N]");
        return ExitCode::from(2);
    }
    let sql = rest.join(" ");
    let seed: u64 = seed.and_then(|s| s.parse().ok()).unwrap_or(42);
    let db = employees_db();
    let train = generate_cases(&db, &scale_config(), 100, 0xA11CE);
    let asr = AsrEngine::new(AsrProfile::acs_trained(), training_vocabulary(&db, &train));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let transcript = asr.transcribe_sql(&sql, &mut rng);
    println!("spoken    : {sql}");
    println!("ASR heard : {transcript}");
    let engine = engine();
    show_result(&engine.transcribe(&transcript))
}

fn cmd_dataset(args: &[String]) -> ExitCode {
    let (rest, seed) = take_flag(args, "--seed");
    let with_transcripts = rest.iter().any(|a| a == "--transcripts");
    let n: usize = rest
        .iter()
        .find(|a| !a.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let seed: u64 = seed.and_then(|s| s.parse().ok()).unwrap_or(0xA11CE);
    let db = employees_db();
    let cases = generate_cases(&db, &scale_config(), n, seed);
    if !with_transcripts {
        for case in cases {
            println!("{}", case.sql);
        }
        return ExitCode::SUCCESS;
    }
    // The paper publishes its spoken-SQL dataset; this is our equivalent:
    // ground-truth SQL, the verbalized (spoken) form, and one sampled noisy
    // transcription, tab-separated.
    let train = generate_cases(&db, &scale_config(), 100, 0xA11CE);
    let asr = AsrEngine::new(AsrProfile::acs_trained(), training_vocabulary(&db, &train));
    println!("sql\tspoken\ttranscript");
    for case in cases {
        let spoken = speakql_asr::spoken_words(&speakql_asr::verbalize_sql(&case.sql)).join(" ");
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ case.id as u64);
        let transcript = asr.transcribe_sql(&case.sql, &mut rng);
        println!("{}\t{}\t{}", case.sql, spoken, transcript);
    }
    ExitCode::SUCCESS
}

fn cmd_index_build(args: &[String]) -> ExitCode {
    let (rest, scale) = take_flag(args, "--scale");
    let Some(path) = rest.first() else {
        eprintln!("usage: speakql index-build <path> [--scale small|medium|paper]");
        return ExitCode::from(2);
    };
    let cfg = match scale.as_deref() {
        Some("paper") => GeneratorConfig::paper(),
        Some("medium") => GeneratorConfig::medium(),
        _ => GeneratorConfig::small(),
    };
    eprintln!("[speakql] generating structures ...");
    let index = speakql_index::StructureIndex::from_grammar(&cfg, speakql_editdist::Weights::PAPER);
    eprintln!(
        "[speakql] {} structures, {} trie nodes",
        index.len(),
        index.total_nodes()
    );
    match speakql_index::save_to_path(&index, path) {
        Ok(()) => {
            println!("wrote {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_index_info(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: speakql index-info <path>");
        return ExitCode::from(2);
    };
    match speakql_index::load_from_path(path) {
        Ok(index) => {
            println!("structures : {}", index.len());
            println!("trie nodes : {}", index.total_nodes());
            println!("segments   : {}", index.segment_count());
            let w = index.weights();
            println!(
                "weights    : keyword {:.1}, splchar {:.1}, literal {:.1}",
                w.keyword as f64 / 10.0,
                w.splchar as f64 / 10.0,
                w.literal as f64 / 10.0
            );
            let lens: Vec<usize> = (0..index.len() as u32)
                .map(|id| index.structure_tokens(id).len())
                .collect();
            println!(
                "lengths    : min {}, max {}",
                lens.iter().min().unwrap_or(&0),
                lens.iter().max().unwrap_or(&0)
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Run the multi-tenant server: the `employees` and `yelp` tenants over one
/// shared structure index (so same-schema queries warm each other's
/// skeleton cache), bounded admission, per-request budgets, and the framed
/// TCP protocol of `speakql-server`. Blocks until killed.
fn cmd_serve(args: &[String]) -> ExitCode {
    let (rest, addr) = take_flag(args, "--addr");
    let (rest, workers) = take_flag(&rest, "--workers");
    let (rest, queue) = take_flag(&rest, "--queue");
    let (rest, timeout_ms) = take_flag(&rest, "--timeout-ms");
    let (rest, cache) = take_flag(&rest, "--cache");
    if !rest.is_empty() {
        eprintln!(
            "usage: speakql serve [--addr A] [--workers N] [--queue N] [--timeout-ms N] [--cache N]"
        );
        return ExitCode::from(2);
    }
    let addr = addr.unwrap_or_else(|| "127.0.0.1:5717".to_string());
    let workers: usize = workers.and_then(|s| s.parse().ok()).unwrap_or(4);
    let queue: usize = queue.and_then(|s| s.parse().ok()).unwrap_or(64);
    let timeout_ms: u64 = timeout_ms.and_then(|s| s.parse().ok()).unwrap_or(30_000);
    let cache: usize = cache.and_then(|s| s.parse().ok()).unwrap_or(1024);

    eprintln!("[speakql] building shared structure index ...");
    let config = SpeakQlConfig {
        generator: scale_config(),
        ..SpeakQlConfig::paper()
    }
    .with_threads(1);
    let index = std::sync::Arc::new(speakql_index::StructureIndex::from_grammar(
        &config.generator,
        config.weights,
    ));
    let registry = TenantRegistry::new(cache, true);
    registry.register(
        "employees",
        &employees_db(),
        std::sync::Arc::clone(&index),
        config.clone(),
    );
    registry.register("yelp", &speakql_data::yelp_db(), index, config);

    let started = Server::serve(
        registry,
        ServerConfig {
            workers,
            queue_capacity: queue,
            request_budget: std::time::Duration::from_millis(timeout_ms),
            max_retries: 2,
            io_timeout: std::time::Duration::from_secs(10),
        },
    );
    let mut server = match started {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error spawning worker threads: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bound = match server.listen(&addr) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error binding {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for tenant in server.registry().tenant_names() {
        eprintln!("[speakql] tenant registered: {tenant}");
    }
    eprintln!(
        "[speakql] serving on {bound} ({workers} workers, {queue}-slot queue, \
         {timeout_ms} ms budget); protocol: 4-byte BE length-prefixed frames, \
         request = \"tenant\\ntranscript\""
    );
    // Serve until killed: the acceptor and workers own all the activity.
    loop {
        std::thread::park();
    }
}

fn cmd_schema() -> ExitCode {
    let db = employees_db();
    for t in &db.tables {
        let cols: Vec<String> = t
            .schema
            .columns
            .iter()
            .map(|c| format!("{} {:?}", c.name, c.ty))
            .collect();
        println!(
            "{} ({})  [{} rows]",
            t.schema.name,
            cols.join(", "),
            t.rows.len()
        );
    }
    ExitCode::SUCCESS
}
