//! CLI-layer fault injection: adversarial inputs driven through the real
//! `speakql` binary must exit with clean status codes and typed error
//! messages — never a panic (no "panicked at" on stderr, no abort signal).

use std::process::{Command, Output};

fn speakql(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_speakql"))
        .args(args)
        .env("SPEAKQL_SCALE", "small")
        .output()
        .expect("spawn speakql binary")
}

fn assert_no_panic(out: &Output, what: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("panicked at"),
        "{what}: binary panicked:\n{stderr}"
    );
    assert!(
        out.status.code().is_some(),
        "{what}: killed by signal (status {:?})",
        out.status
    );
}

#[test]
fn overlong_transcript_is_a_clean_failure_exit() {
    let words: Vec<String> = vec!["select".to_string(); 2_000];
    let mut args = vec!["transcribe"];
    args.extend(words.iter().map(String::as_str));
    let out = speakql(&args);
    assert_no_panic(&out, "overlong transcribe");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "missing typed error:\n{stderr}");
    assert!(stderr.contains("2000"), "error should name the word count");
}

#[test]
fn non_ascii_transcript_succeeds() {
    let out = speakql(&["transcribe", "sélect", "salary", "frôm", "employées"]);
    assert_no_panic(&out, "non-ascii transcribe");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("corrected :"), "no correction:\n{stdout}");
}

#[test]
fn batch_with_poisoned_line_reports_per_slot_errors() {
    let dir = std::env::temp_dir().join("speakql-fault-cli");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("batch.txt");
    let overlong = vec!["select"; 1_100].join(" ");
    std::fs::write(
        &path,
        format!("select salary from employees\n{overlong}\nselect name from employees\n"),
    )
    .expect("write batch file");

    let out = speakql(&["transcribe", "--batch", path.to_str().expect("utf-8 path")]);
    std::fs::remove_file(&path).ok();
    assert_no_panic(&out, "poisoned batch");
    // Batch mode keeps going past failed slots and exits successfully.
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let rows: Vec<&str> = stdout.lines().filter(|l| l.contains('\t')).collect();
    assert_eq!(rows.len(), 3, "one TSV row per input line:\n{stdout}");
    assert!(
        rows[1].contains("<error: transcript_too_long>"),
        "poisoned slot must carry its error class:\n{stdout}"
    );
    assert!(rows[0].contains("SELECT"), "good slot corrected:\n{stdout}");
    assert!(rows[2].contains("SELECT"), "good slot corrected:\n{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("1 transcript(s) failed"),
        "failure tally missing:\n{stderr}"
    );
}

#[test]
fn corrupted_index_file_is_a_typed_error() {
    let dir = std::env::temp_dir().join("speakql-fault-cli");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("corrupt.sqlx");
    std::fs::write(&path, b"SQLXgarbage-not-an-index").expect("write corrupt index");

    let out = speakql(&["index-info", path.to_str().expect("utf-8 path")]);
    std::fs::remove_file(&path).ok();
    assert_no_panic(&out, "corrupt index-info");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "missing typed error:\n{stderr}");
}
