//! Live dictation: the interactive display re-renders the corrected query
//! after every recognized word (paper §5's on-screen experience), then the
//! session state machine applies clause re-dictation and keyboard edits.
//!
//! ```text
//! cargo run --release --example streaming_dictation
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use speakql_asr::{AsrEngine, AsrProfile, Vocabulary};
use speakql_core::{SpeakQl, SpeakQlConfig, StreamingTranscriber};
use speakql_data::employees_db;
use speakql_ui::dictate_and_repair;

fn main() {
    let db = employees_db();
    println!("building engine ...");
    let engine = SpeakQl::new(&db, SpeakQlConfig::small());

    // --- live word-by-word display ----------------------------------------
    let transcript = "select sum open parenthesis salary close parenthesis \
                      from celeries where from date equals january twentieth \
                      nineteen ninety three";
    println!("\n--- streaming dictation ---");
    let mut stream = StreamingTranscriber::new(&engine);
    for word in transcript.split_whitespace() {
        stream.push_word(word);
        println!("{word:>12} | {}", stream.best_sql().unwrap_or("..."));
    }
    let final_result = stream.finish().expect("spoken words");
    println!("\nfinal: {}", final_result.best_sql().unwrap());

    // --- a full correction session on a noisy dictation -------------------
    println!("\n--- dictate-and-repair session ---");
    let asr = AsrEngine::new(AsrProfile::acs(), Vocabulary::empty());
    let intended = "SELECT LastName FROM Employees NATURAL JOIN Salaries WHERE salary > 70000";
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let session = dictate_and_repair(&engine, &asr, intended, &mut rng);
    println!("intended : {intended}");
    println!("final    : {}", session.rendered());
    println!(
        "effort   : {} units across {} interactions",
        session.total_effort(),
        session.log().len()
    );
    for step in session.log() {
        println!("  - {step:?}");
    }
}
