//! A walk through the ASR error taxonomy of paper Table 1, showing how each
//! error class arises in the simulated channel and which SpeakQL component
//! repairs it.
//!
//! ```text
//! cargo run --release --example noisy_channel
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use speakql_asr::{spoken_words, verbalize_sql, AsrEngine, AsrProfile, Vocabulary};
use speakql_core::{SpeakQl, SpeakQlConfig};
use speakql_data::employees_db;
use speakql_grammar::render_masked;

fn main() {
    let db = employees_db();
    let engine = SpeakQl::new(&db, SpeakQlConfig::small());
    let vocab = Vocabulary::from_literals(db.table_names().into_iter().chain(db.attribute_names()));
    let asr = AsrEngine::new(AsrProfile::acs_trained(), vocab);

    let cases: [(&str, &str); 5] = [
        (
            "homophony: keyword SUM can come back as 'some'",
            "SELECT SUM ( salary ) FROM Salaries",
        ),
        (
            "homophony: literal FromDate splits into keyword FROM + 'date'",
            "SELECT FromDate FROM DepartmentEmployee",
        ),
        (
            "unbounded vocabulary: the value d002 is no English word",
            "SELECT FromDate FROM DepartmentEmployee WHERE DepartmentNumber = 'd002'",
        ),
        (
            "number splitting: 45412 spoken with a pause",
            "SELECT LastName FROM Employees NATURAL JOIN Salaries WHERE salary > 45412",
        ),
        (
            "dates: three tokens that all must survive",
            "SELECT SUM ( salary ) FROM Salaries WHERE FromDate = '1993-01-20'",
        ),
    ];

    for (i, (label, sql)) in cases.iter().enumerate() {
        println!("--- case {}: {label}", i + 1);
        println!("ground truth : {sql}");
        let spoken = spoken_words(&verbalize_sql(sql)).join(" ");
        println!("spoken as    : {spoken}");
        // Sample a few channel outputs to show the variability.
        for seed in 0..2u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed * 7919 + i as u64);
            let transcript = asr.transcribe_sql(sql, &mut rng);
            let result = engine.transcribe(&transcript).expect("valid dictation");
            println!("ASR heard    : {transcript}");
            println!("masked       : {}", render_masked(&result.processed.masked));
            println!("SpeakQL      : {}", result.best_sql().unwrap_or("<none>"));
        }
        println!();
    }
    println!("Structure determination repairs keyword/splchar damage via the");
    println!("weighted trie search; literal determination repairs literal damage");
    println!("via phonetic voting against the database's own values.");
}
