//! Quickstart: the SpeakQL pipeline on the paper's running example.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small database, dictates "Select Salary From Employees Where
//! Name Equals John", corrupts it the way ASR would, and shows every stage
//! of the correction pipeline (paper Fig. 2).

use speakql_core::{SpeakQl, SpeakQlConfig};
use speakql_db::{Column, Database, Table, TableSchema, Value, ValueType};
use speakql_grammar::render_masked;

fn main() {
    // 1. A database to query: SpeakQL works on any schema.
    let mut db = Database::new("quickstart");
    let mut employees = Table::new(TableSchema::new(
        "Employees",
        vec![
            Column::new("Name", ValueType::Text),
            Column::new("Salary", ValueType::Int),
        ],
    ));
    employees.push_row(vec![Value::Text("John".into()), Value::Int(70000)]);
    employees.push_row(vec![Value::Text("Perla".into()), Value::Int(82000)]);
    db.add_table(employees);

    // 2. The engine: generates the SQL structure space offline and indexes
    //    the database's literals phonetically.
    println!("building SpeakQL engine (structure space + phonetic catalog) ...");
    let engine = SpeakQl::new(&db, SpeakQlConfig::small());
    println!("  {} candidate structures indexed\n", engine.index().len());

    // 3. The user dictates; the ASR mishears (paper §2 running example).
    let transcript = "select sales from employers wear name equals jon";
    println!("ASR transcription : {transcript}");

    // 4. SpeakQL corrects. `transcribe` returns a typed error for garbage
    //    input (empty transcript, over-long transcript, contained panic);
    //    this known-good dictation always succeeds.
    let result = engine.transcribe(transcript).expect("valid dictation");
    println!(
        "masked structure  : {}",
        render_masked(&result.processed.masked)
    );
    println!("ranked candidates :");
    for (i, c) in result.candidates.iter().enumerate().take(3) {
        println!(
            "  #{} (distance {}): {}",
            i + 1,
            speakql_editdist::dist_to_string(c.distance),
            c.sql
        );
    }
    let best = result.best_sql().expect("candidates");
    println!("\ncorrected SQL     : {best}");

    // 5. Execute it.
    let rows = speakql_db::execute_sql(&db, best).expect("valid SQL");
    println!("\n{}", rows.render_table());
    println!("latency: {:.1} ms", result.elapsed.as_secs_f64() * 1000.0);
}
