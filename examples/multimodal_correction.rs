//! The multimodal correction loop of the SpeakQL interface (paper §5):
//! dictate the whole query, re-dictate a clause, then fix stray tokens with
//! the SQL Keyboard — counting every unit of effort along the way.
//!
//! ```text
//! cargo run --release --example multimodal_correction
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use speakql_asr::{AsrEngine, AsrProfile, Vocabulary};
use speakql_core::{SpeakQl, SpeakQlConfig};
use speakql_data::employees_db;
use speakql_grammar::ClauseKind;
use speakql_ui::{edit_script, SqlKeyboard};

fn main() {
    let db = employees_db();
    let engine = SpeakQl::new(&db, SpeakQlConfig::medium());
    // An untrained ASR makes for a noisier, more interesting session.
    let asr = AsrEngine::new(AsrProfile::acs(), Vocabulary::empty());
    let mut rng = ChaCha8Rng::seed_from_u64(20);

    let intended = "SELECT ToDate , MAX ( salary ) , COUNT ( salary ) , MIN ( salary ) \
                    FROM Salaries WHERE FromDate = '1990-03-20' GROUP BY ToDate";
    println!("intended query:\n  {intended}\n");

    // --- 1. Dictate the whole query (the big Record button) --------------
    let transcript = asr.transcribe_sql(intended, &mut rng);
    println!("[dictation 1] ASR heard:\n  {transcript}");
    let t = engine.transcribe(&transcript).expect("valid dictation");
    let mut current = t.best_sql().expect("candidates").to_string();
    println!("[dictation 1] SpeakQL rendered:\n  {current}");
    let mut script = edit_script(intended, &current);
    println!("  -> {} token error(s) remain\n", script.ted());

    // --- 2. Clause-level re-dictation (the per-clause record buttons) ----
    if script.ted() > 0 {
        let where_clause = &intended[intended.find("WHERE").unwrap()..];
        let clause_transcript = asr.transcribe_sql(where_clause, &mut rng);
        println!("[dictation 2] re-dictating the WHERE clause:\n  {clause_transcript}");
        let ct = engine
            .transcribe_clause(ClauseKind::Where, &clause_transcript)
            .expect("valid clause dictation");
        if let Some(clause_sql) = ct.best_sql() {
            let prefix = current.find(" WHERE ").unwrap_or(current.len());
            let candidate = format!("{} {}", &current[..prefix], clause_sql);
            let cscript = edit_script(intended, &candidate);
            if cscript.ted() < script.ted() {
                println!("[dictation 2] clause accepted:\n  {clause_sql}");
                current = candidate;
                script = cscript;
            } else {
                println!("[dictation 2] clause no better; keeping previous rendering");
            }
        }
        println!("  -> {} token error(s) remain\n", script.ted());
    }

    // --- 3. SQL Keyboard touch-up ----------------------------------------
    let keyboard = SqlKeyboard::for_database(&db);
    println!(
        "[keyboard] panes: {} keywords | {} tables | {} attributes",
        keyboard.keywords.len(),
        keyboard.tables.len(),
        keyboard.attributes.len()
    );
    if script.ted() == 0 {
        println!("[keyboard] nothing to fix!");
    } else {
        for (class, tok) in &script.deletions {
            println!("[keyboard] delete stray {class:?} token '{tok}'  (1 touch)");
        }
        for (class, tok) in &script.insertions {
            println!(
                "[keyboard] insert {class:?} token '{tok}'  ({} touch(es))",
                speakql_ui::touches_for_token(*class, tok)
            );
        }
        println!("[keyboard] total touches: {}", script.touches());
    }

    println!("\nquery before keyboard fixes:\n  {current}");
    println!("query after keyboard fixes:\n  {intended}");
    println!(
        "total session effort: 1 dictation + {} re-dictation(s) + {} touches",
        if script.ted() > 0 { 1 } else { 0 },
        script.touches()
    );
}
