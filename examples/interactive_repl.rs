//! An interactive SpeakQL console over the Employees database.
//!
//! ```text
//! cargo run --release --example interactive_repl
//! ```
//!
//! Type a *transcript* the way an ASR would produce it (words, spoken
//! operators) and SpeakQL corrects and executes it:
//!
//! ```text
//! speakql> select sum open parenthesis salary close parenthesis from celeries
//! ```
//!
//! Commands:
//! - `speak: <SQL>` — verbalize the SQL, run it through the simulated noisy
//!   ASR channel, then correct the result (full pipeline);
//! - `where: <transcript>` — clause-level dictation of a WHERE clause;
//! - `schema` — print the database schema;
//! - `quit` — exit.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use speakql_asr::{AsrEngine, AsrProfile};
use speakql_core::{SpeakQl, SpeakQlConfig};
use speakql_data::{employees_db, generate_cases, training_vocabulary};
use speakql_grammar::{ClauseKind, GeneratorConfig};
use std::io::{BufRead, Write};

fn main() {
    let db = employees_db();
    eprintln!("building SpeakQL engine ...");
    let cfg = GeneratorConfig::medium();
    let engine = SpeakQl::new(
        &db,
        SpeakQlConfig {
            generator: cfg.clone(),
            ..SpeakQlConfig::paper()
        },
    );
    let train = generate_cases(&db, &cfg, 150, 0xA11CE);
    let asr = AsrEngine::new(AsrProfile::acs_trained(), training_vocabulary(&db, &train));
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    eprintln!(
        "ready: {} structures indexed. Type 'schema' or a transcript.",
        engine.index().len()
    );

    let stdin = std::io::stdin();
    loop {
        print!("speakql> ");
        std::io::stdout().flush().ok();
        let Some(Ok(line)) = stdin.lock().lines().next() else {
            break;
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            "quit" | "exit" => break,
            "schema" => {
                for t in &db.tables {
                    let cols: Vec<&str> =
                        t.schema.columns.iter().map(|c| c.name.as_str()).collect();
                    println!(
                        "  {} ( {} )  [{} rows]",
                        t.schema.name,
                        cols.join(" , "),
                        t.rows.len()
                    );
                }
                continue;
            }
            _ => {}
        }

        let result = if let Some(sql) = line.strip_prefix("speak:") {
            let transcript = asr.transcribe_sql(sql.trim(), &mut rng);
            println!("ASR heard : {transcript}");
            engine.transcribe(&transcript)
        } else if let Some(clause) = line.strip_prefix("where:") {
            engine.transcribe_clause(ClauseKind::Where, clause.trim())
        } else {
            engine.transcribe(line)
        };

        // Typed errors (empty input, over-long input, contained faults)
        // print and return to the prompt instead of killing the session.
        let result = match result {
            Ok(t) => t,
            Err(e) => {
                println!("error: {e}");
                continue;
            }
        };

        let Some(best) = result.best_sql() else {
            println!("no candidates");
            continue;
        };
        println!(
            "corrected : {best}   ({:.0} ms)",
            result.elapsed.as_secs_f64() * 1000.0
        );
        for (i, c) in result.candidates.iter().enumerate().skip(1).take(2) {
            println!("   alt #{i} : {}", c.sql);
        }
        if best.starts_with("SELECT") {
            match speakql_db::execute_sql(&db, best) {
                Ok(rows) => {
                    let shown = rows.rows.len().min(8);
                    println!(
                        "{}",
                        speakql_db::QueryResult {
                            columns: rows.columns.clone(),
                            rows: rows.rows[..shown].to_vec(),
                        }
                        .render_table()
                    );
                    if rows.rows.len() > shown {
                        println!("... {} more row(s)", rows.rows.len() - shown);
                    }
                }
                Err(e) => println!("execution error: {e}"),
            }
        }
    }
}
