//! A tour of the full pipeline on the Employees database: every Table 6
//! user-study query is verbalized, pushed through the simulated ASR channel,
//! corrected by SpeakQL, and executed.
//!
//! ```text
//! cargo run --release --example employees_tour
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use speakql_asr::{AsrEngine, AsrProfile};
use speakql_core::{SpeakQl, SpeakQlConfig};
use speakql_data::{employees_db, generate_cases, training_vocabulary, STUDY_QUERIES};
use speakql_grammar::GeneratorConfig;
use speakql_metrics::ted;

fn main() {
    let db = employees_db();
    println!(
        "Employees database: {} tables, {} total rows",
        db.tables.len(),
        db.tables.iter().map(|t| t.rows.len()).sum::<usize>()
    );

    // A custom-trained ASR: vocabulary from generated training queries,
    // exactly the paper's §6.1 procedure.
    let cfg = GeneratorConfig::medium();
    let train = generate_cases(&db, &cfg, 150, 0xA11CE);
    let vocab = training_vocabulary(&db, &train);
    let asr = AsrEngine::new(AsrProfile::acs_trained(), vocab);

    println!("building SpeakQL engine ...");
    let engine = SpeakQl::new(
        &db,
        SpeakQlConfig {
            generator: cfg,
            ..SpeakQlConfig::paper()
        },
    );
    println!("  {} structures indexed\n", engine.index().len());

    let mut exact = 0usize;
    for q in &STUDY_QUERIES {
        let mut rng = ChaCha8Rng::seed_from_u64(q.id as u64);
        let transcript = asr.transcribe_sql(q.sql, &mut rng);
        let result = engine.transcribe(&transcript).expect("valid dictation");
        let best = result.best_sql().unwrap_or_default();
        let errors = ted(q.sql, best);
        if errors == 0 {
            exact += 1;
        }
        println!("q{:<2} {}", q.id, q.description);
        println!("    spoken  : {transcript}");
        println!("    SpeakQL : {best}");
        println!(
            "    token errors remaining: {errors}   latency: {:.0} ms",
            result.elapsed.as_secs_f64() * 1000.0
        );
        match speakql_db::execute_sql(&db, best) {
            Ok(rows) => println!("    executed: {} row(s)\n", rows.rows.len()),
            Err(e) => println!("    execution failed: {e}\n"),
        }
    }
    println!("{exact}/12 study queries corrected exactly on the first dictation");
    println!("(the rest are what the interactive SQL Keyboard and clause re-dictation are for)");
}
