//! The `Standard` distribution: `rng.gen::<T>()` support.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The uniform "natural" distribution for primitives: full range for
/// integers, `[0, 1)` for floats, fair coin for `bool`.
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        crate::unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        crate::unit_f64(rng) as f32
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
