//! Slice sampling helpers (`SliceRandom`).

use crate::{Rng, RngCore};

/// Random selection from slices.
pub trait SliceRandom {
    type Item;

    /// Uniformly choose one element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }
}
