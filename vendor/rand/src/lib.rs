//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no crates.io registry access, so the workspace
//! vendors the small slice of `rand` it actually uses: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), the [`distributions::Standard`] distribution, and
//! [`seq::SliceRandom::choose`]. Value streams are deterministic for a given
//! generator but are not bit-compatible with upstream `rand`.

pub mod distributions;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// Core source of randomness: 32/64-bit outputs.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes (little-endian u64 stream).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64, used for seed expansion.
pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types for which a uniform sample over a range can be drawn.
pub trait SampleUniform: Sized {}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let v = (rng.next_u64() as u128) % span;
                ((self.start as $wide as u128).wrapping_add(v) as $wide) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                ((start as $wide as u128).wrapping_add(v) as $wide) as $t
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = unit_f64(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Uniform in `[0, 1)` from the top 53 bits of a `u64`.
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut sm = SplitMix64(self.0);
            self.0 += 1;
            sm.next()
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn standard_f64_is_unit() {
        let mut rng = Counter(99);
        for _ in 0..100 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
