//! Offline vendored `serde` facade.
//!
//! The workspace only uses serde as `#[derive(Serialize, Deserialize)]`
//! markers on plain data types — no generic `Serialize` bounds and no
//! typed (de)serialization. This facade therefore ships marker traits with
//! blanket impls plus no-op derive macros, which keeps every annotated type
//! compiling without a registry.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; blanket-implemented for every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait; blanket-implemented for every sized type.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}
