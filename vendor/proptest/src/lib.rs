//! Offline vendored subset of the `proptest` property-testing framework.
//!
//! Implements the API surface this workspace uses: the [`strategy::Strategy`]
//! trait with `prop_map` / `prop_filter` / `prop_recursive`, strategies for
//! ranges, tuples, `Just`, regex-subset string patterns, `prop::collection::vec`
//! and `prop::option::of`, `any::<T>()`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_oneof!` macros.
//!
//! Unlike upstream proptest there is no shrinking and no persistence of
//! regression seeds; case generation is deterministic per (test name, case
//! index), so failures reproduce across runs.

pub mod test_runner {
    use std::fmt;

    /// Error returned from a failing property body.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runner configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG handed to strategies.
    pub struct TestRng {
        inner: rand_chacha::ChaCha8Rng,
    }

    impl TestRng {
        pub fn deterministic(name: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            use rand::SeedableRng;
            TestRng {
                inner: rand_chacha::ChaCha8Rng::seed_from_u64(h),
            }
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.inner.fill_bytes(dest)
        }
    }

    /// Drives one `proptest!`-generated test function.
    pub struct TestRunner {
        config: ProptestConfig,
        name: &'static str,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            TestRunner { config, name }
        }

        pub fn run<F>(&mut self, mut body: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            for case in 0..self.config.cases {
                let mut rng = TestRng::deterministic(self.name, case as u64);
                if let Err(err) = body(&mut rng) {
                    panic!(
                        "proptest failed: test `{}`, case {}/{}: {}",
                        self.name, case, self.config.cases, err
                    );
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                whence: whence.into(),
                f,
            }
        }

        /// Build a recursive strategy: `depth` levels of `recurse` stacked on
        /// top of `self` as the leaf. `_desired_size` and `_expected_branch_size`
        /// are accepted for upstream signature compatibility.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> ArcStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(ArcStrategy<Self::Value>) -> R,
        {
            let leaf = arc(self);
            let mut current = leaf.clone();
            for _ in 0..depth {
                let deeper = arc(recurse(current));
                current = arc(one_of(vec![leaf.clone(), deeper]));
            }
            current
        }
    }

    /// A clonable, type-erased strategy (the vendored analogue of upstream's
    /// `BoxedStrategy`).
    pub struct ArcStrategy<T> {
        generator: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for ArcStrategy<T> {
        fn clone(&self) -> Self {
            ArcStrategy {
                generator: Rc::clone(&self.generator),
            }
        }
    }

    impl<T> Strategy for ArcStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.generator)(rng)
        }
    }

    /// Type-erase any strategy into an [`ArcStrategy`].
    pub fn arc<S>(strategy: S) -> ArcStrategy<S::Value>
    where
        S: Strategy + 'static,
    {
        ArcStrategy {
            generator: Rc::new(move |rng| strategy.generate(rng)),
        }
    }

    /// Uniform choice among alternatives (backs `prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<ArcStrategy<T>>,
    }

    pub fn one_of<T>(options: Vec<ArcStrategy<T>>) -> OneOf<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rand::Rng::gen_range(rng, 0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        source: S,
        whence: String,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let value = self.source.generate(rng);
                if (self.f)(&value) {
                    return value;
                }
            }
            panic!(
                "prop_filter rejected 10000 consecutive values: {}",
                self.whence
            );
        }
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        T: Copy + rand::SampleUniform,
        std::ops::Range<T>: rand::SampleRange<T>,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rand::Rng::gen_range(rng, self.start..self.end)
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        T: Copy + rand::SampleUniform,
        std::ops::RangeInclusive<T>: rand::SampleRange<T>,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rand::Rng::gen_range(rng, *self.start()..=*self.end())
        }
    }

    /// `&'static str` patterns generate strings from a regex subset:
    /// concatenations of `[class]` atoms (ranges and literal characters)
    /// with optional `{n}` / `{m,n}` quantifiers.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($S:ident : $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub struct AnyStrategy<T>(PhantomData<T>);

    /// The strategy for `T`'s whole domain, as in `any::<i32>()`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rand::RngCore::next_u32(rng) & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty => $via:ident),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rand::RngCore::$via(rng) as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(
        u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
        usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
        i64 => next_u64, isize => next_u64
    );
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.size.start..self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rand::Rng::gen_range(rng, 0u32..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

mod string {
    use crate::test_runner::TestRng;

    /// Generate a string from the regex subset `([class]{m,n} | [class])+`.
    /// Classes support `a-z` ranges and literal characters; quantifiers are
    /// `{n}` or `{m,n}` (inclusive), defaulting to exactly one.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let class: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                        + i;
                    let members = expand_class(&chars[i + 1..close], pattern);
                    i = close + 1;
                    members
                }
                '\\' => {
                    let c = *chars
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                    i += 2;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("bad quantifier"),
                        n.trim().parse::<usize>().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let reps = rand::Rng::gen_range(rng, lo..=hi);
            for _ in 0..reps {
                let idx = rand::Rng::gen_range(rng, 0..class.len());
                out.push(class[idx]);
            }
        }
        out
    }

    fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
        assert!(!body.is_empty(), "empty class in pattern {pattern:?}");
        let mut members = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
                assert!(lo <= hi, "bad range in class in pattern {pattern:?}");
                for c in lo..=hi {
                    members.push(char::from_u32(c).unwrap());
                }
                i += 3;
            } else {
                members.push(body[i]);
                i += 1;
            }
        }
        members
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespaced strategy modules, as in `prop::collection::vec`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
            runner.run(|rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                let case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    { $body }
                    ::std::result::Result::Ok(())
                };
                case()
            });
        }
    )*};
}

/// Assert a condition inside a `proptest!` body; failure aborts the case
/// with a [`test_runner::TestCaseError`] rather than panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Choose uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::strategy::arc($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_case() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u32..100, 1..10);
        let a = strat.generate(&mut TestRng::deterministic("x", 3));
        let b = strat.generate(&mut TestRng::deterministic("x", 3));
        assert_eq!(a, b);
    }

    #[test]
    fn string_pattern_shape() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        for case in 0..50 {
            let s = "[A-Za-z][A-Za-z0-9_]{0,10}".generate(&mut TestRng::deterministic("p", case));
            assert!(!s.is_empty() && s.len() <= 11, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic(), "{s:?}");
            assert!(
                s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "{s:?}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_roundtrip(xs in prop::collection::vec(0i64..50, 0..8), flip in any::<bool>()) {
            let mut ys = xs.clone();
            ys.reverse();
            if flip {
                ys.reverse();
                prop_assert_eq!(&xs, &ys);
            }
            prop_assert_eq!(xs.len(), ys.len(), "lengths differ: {}", xs.len());
            prop_assert!(xs.len() < 8);
        }

        #[test]
        fn oneof_and_filter(word in prop_oneof![
            Just("alpha".to_string()),
            "[a-z]{2,5}",
        ], n in 1u8..=4) {
            prop_assert!(!word.is_empty());
            prop_assert!((1..=4u8).contains(&n));
        }
    }
}
