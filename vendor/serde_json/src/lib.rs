//! Offline vendored subset of `serde_json`: the [`Value`] data model, the
//! [`json!`] macro, [`to_string_pretty`], and a [`from_str`] parser for
//! reading snapshots back. Only what the bench harness uses — no typed
//! (de)serialization.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

/// A JSON number: integer or double.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    I64(i64),
    U64(u64),
    F64(f64),
}

/// A JSON object with sorted keys (matches upstream serde_json's default
/// `BTreeMap` backing).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: BTreeMap<String, Value>,
}

impl Map {
    pub fn new() -> Map {
        Map::default()
    }

    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.entries.insert(key, value)
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter()
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.keys()
    }
}

impl Value {
    /// Index into an object by key (`None` for non-objects / absent keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The object backing, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The array backing, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if representable losslessly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v),
            Value::Number(Number::I64(v)) => u64::try_from(*v).ok(),
            Value::Number(Number::F64(v))
                if v.fract() == 0.0 && *v >= 0.0 && *v < 2f64.powi(53) =>
            {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// Numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F64(v)) => Some(*v),
            Value::Number(Number::I64(v)) => Some(*v as f64),
            Value::Number(Number::U64(v)) => Some(*v as f64),
            _ => None,
        }
    }
}

/// Conversion into a [`Value`] by reference; what `json!` interpolation
/// uses, so that place expressions (e.g. `row[0]`) need not move.
pub trait ToJson {
    fn to_json(&self) -> Value;
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

macro_rules! impl_to_json_signed {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::I64(v as i64))
            }
        }
    )*};
}

macro_rules! impl_to_json_unsigned {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::U64(v as u64))
            }
        }
    )*};
}

impl_to_json_signed!(i8, i16, i32, i64, isize);
impl_to_json_unsigned!(u8, u16, u32, u64, usize);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F64(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Serialization error (unused by the pretty printer, which is total, but
/// kept for call-site signature compatibility).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Parse a JSON document into a [`Value`].
///
/// A strict recursive-descent parser over the standard JSON grammar;
/// trailing garbage after the top-level value is an error.
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our metric
                            // names; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so byte
                    // boundaries are trustworthy).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::F64(v)))
            .map_err(|_| self.err("bad number"))
    }
}

/// Pretty-print a value with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, value, 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_string(out, key);
                out.push_str(": ");
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    use std::fmt::Write;
    match n {
        Number::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F64(v) if v.is_finite() => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        // JSON has no NaN/Infinity; match serde_json's closest behaviour.
        Number::F64(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// Construct a [`Value`] from JSON-like syntax with expression
/// interpolation. Supports objects, arrays, `null`/`true`/`false`, and any
/// expression convertible via [`ToJson`].
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // Array element accumulation. The accumulated elements live in `[...]`.
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // Object entry accumulation: (@object map (partial key) (unparsed)).
    (@object $object:ident () ()) => {};
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*)) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*)) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*)) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*)) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*
        );
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*)) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*
        );
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*)) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*
        );
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr)) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Committed entry: insert, then continue with the rest.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    // Munch one token into the pending key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*)) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*));
    };

    // Entry points.
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(vec![])
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::ToJson::to_json(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(true), Value::Bool(true));
        assert_eq!(json!(1.5), Value::Number(Number::F64(1.5)));
        assert_eq!(json!("hi"), Value::String("hi".into()));
    }

    #[test]
    fn interpolation_does_not_move() {
        let rows = [["a".to_string(), "b".to_string()]];
        let v = json!({"first": rows[0][0], "second": rows[0][1]});
        assert_eq!(
            v,
            json!({"second": "b", "first": "a"}),
            "maps compare by content"
        );
        assert_eq!(rows[0][0], "a");
    }

    #[test]
    fn nested_objects_and_arrays() {
        let xs = vec![1.0f64, 2.0];
        let v = json!({
            "stats": { "mean": 1.5, "n": 2usize },
            "series": xs,
            "pairs": [[0.0, 1.0], [0.5, 2.0]],
            "flag": false,
        });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"mean\": 1.5"), "{s}");
        assert!(s.contains("\"n\": 2"), "{s}");
        assert!(s.contains('['), "{s}");
    }

    #[test]
    fn pretty_printing_shape() {
        let v = json!({"b": 1i64, "a": [true, null]});
        let s = to_string_pretty(&v).unwrap();
        // BTreeMap ordering: "a" before "b".
        let a_pos = s.find("\"a\"").unwrap();
        let b_pos = s.find("\"b\"").unwrap();
        assert!(a_pos < b_pos);
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn tuple_series_render_as_pairs() {
        let series: Vec<(f64, f64)> = vec![(0.0, 0.5), (1.0, 0.9)];
        let v = json!(series);
        match v {
            Value::Array(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[0], json!([0.0, 0.5]));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn string_escaping() {
        let v = json!("line\n\"quoted\"");
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "\"line\\n\\\"quoted\\\"\"");
    }

    #[test]
    fn parse_round_trips_pretty_output() {
        let v = json!({
            "counters": { "search.nodes_visited": 1234u64, "neg": -5i64 },
            "stages": { "stage.search": { "p50_micros": 1.5, "count": 2u64 } },
            "wall_clock_ms": 321.25,
            "note": "a\n\"b\"",
            "list": [1u64, 2u64, 3u64],
            "flag": true,
            "nothing": null,
        });
        let parsed = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn value_accessors() {
        let v = from_str(r#"{"a": {"b": 7}, "f": 1.5, "s": "x", "l": [1]}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.get("b")).and_then(Value::as_u64),
            Some(7)
        );
        assert_eq!(v.get("f").and_then(Value::as_f64), Some(1.5));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("l").and_then(Value::as_array).map(Vec::len), Some(1));
        assert!(v.get("missing").is_none());
        assert!(v.get("s").and_then(Value::as_u64).is_none());
        let keys: Vec<&String> = v.as_object().unwrap().keys().collect();
        assert_eq!(keys, ["a", "f", "l", "s"]);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{} extra").is_err());
        assert!(from_str("\"unterminated").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn parse_number_widths() {
        assert_eq!(
            from_str("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
        assert_eq!(from_str("-3").unwrap().as_f64(), Some(-3.0));
        assert_eq!(from_str("2.5e2").unwrap().as_f64(), Some(250.0));
    }
}
