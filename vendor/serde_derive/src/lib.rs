//! No-op derive macros backing the vendored `serde` facade. The facade's
//! blanket impls already cover every type, so the derives expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
