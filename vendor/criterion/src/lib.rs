//! Offline vendored subset of the `criterion` benchmark harness.
//!
//! Provides [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`],
//! and the `criterion_group!` / `criterion_main!` macros. Measurement is a
//! straightforward calibrated-sample design: one warmup iteration sizes the
//! batch, then `sample_size` batches are timed and the median per-iteration
//! time is reported. No plotting, baselines, or statistical regression.

use std::fmt;
use std::time::{Duration, Instant};

/// Target wall-clock time for a single timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(40);

pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` appends `--bench`; any bare trailing argument is a
        // substring filter on benchmark names, as with upstream criterion.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 100,
            filter,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    fn run_one<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            per_iter: None,
        };
        f(&mut bencher);
        match bencher.per_iter {
            Some(per_iter) => println!("{name:<40} time: [{}]", format_duration(per_iter)),
            None => println!("{name:<40} (no measurement)"),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: BenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.0);
        self.criterion.run_one(&name, f);
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

pub struct Bencher {
    sample_size: usize,
    per_iter: Option<Duration>,
}

impl Bencher {
    /// Time the routine: calibrate a batch size from one warmup pass, then
    /// record `sample_size` timed batches and keep the median.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warmup_start = Instant::now();
        std::hint::black_box(routine());
        let warmup = warmup_start.elapsed().max(Duration::from_nanos(1));

        let iters_per_sample =
            (SAMPLE_TARGET.as_nanos() / warmup.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed() / iters_per_sample as u32);
        }
        samples.sort();
        self.per_iter = Some(samples[samples.len() / 2]);
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        c.bench_function("noop_sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        group.bench_function(BenchmarkId::from_parameter("fast"), |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion {
            sample_size: 3,
            filter: None,
        };
        trivial_bench(&mut c);
    }

    #[test]
    fn filter_skips() {
        let mut c = Criterion {
            sample_size: 2,
            filter: Some("nomatch".to_string()),
        };
        // Must return without ever timing the (panicking) routine.
        c.bench_function("other", |_b| panic!("filtered benchmarks must not run"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert!(format_duration(Duration::from_micros(3)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(3)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
