//! Offline vendored subset of the `bytes` crate: [`Buf`] over `&[u8]`,
//! [`BufMut`]/[`BytesMut`] for building buffers, and a refcounted immutable
//! [`Bytes`] handle with zero-copy [`Bytes::slice`] windows. Multi-byte
//! integers are big-endian by default, matching upstream; explicit `_le`
//! variants write little-endian.

use std::ops::{Deref, Range};
use std::sync::Arc;

/// Read-side cursor over a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;

    fn advance(&mut self, cnt: usize);

    fn chunk(&self) -> &[u8];

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "buffer underflow");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16(&mut self) -> u16 {
        assert!(self.remaining() >= 2, "buffer underflow");
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    fn get_u32(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "buffer underflow");
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    fn get_u64(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "buffer underflow");
        let c = self.chunk();
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&c[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write-side extension for growable buffers.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// An immutable, refcounted byte buffer. Cloning and [`Bytes::slice`] are
/// O(1): both share the same backing allocation, so views carved out of one
/// loaded file keep it alive without copying.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes::from(src.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Zero-copy sub-window sharing this buffer's allocation.
    ///
    /// # Panics
    /// Panics if the range is inverted or out of bounds, mirroring slice
    /// indexing.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::from(data),
            start: 0,
            end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_slice(b"HDR!");
        buf.put_u16(0xBEEF);
        buf.put_u32(0xDEAD_CAFE);
        buf.put_u8(7);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 11);
        assert_eq!(&frozen[..4], b"HDR!");
        // Big-endian layout.
        assert_eq!(frozen[4], 0xBE);
        assert_eq!(frozen[5], 0xEF);

        let mut cursor: &[u8] = &frozen;
        cursor.advance(4);
        assert_eq!(cursor.get_u16(), 0xBEEF);
        assert_eq!(cursor.get_u32(), 0xDEAD_CAFE);
        assert_eq!(cursor.get_u8(), 7);
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn little_endian_writers() {
        let mut buf = BytesMut::new();
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_CAFE);
        buf.put_u64_le(0x0102_0304_0506_0708);
        assert_eq!(buf[0], 0xEF);
        assert_eq!(buf[1], 0xBE);
        assert_eq!(buf[2], 0xFE);
        assert_eq!(buf[6], 0x08);
    }

    #[test]
    fn slices_share_the_allocation() {
        let b = Bytes::from((0u8..32).collect::<Vec<u8>>());
        let s = b.slice(4..12);
        assert_eq!(s.len(), 8);
        assert_eq!(s[0], 4);
        let s2 = s.slice(2..4);
        assert_eq!(&s2[..], &[6, 7]);
        assert_eq!(Arc::strong_count(&b.data), 3);
        drop(b);
        assert_eq!(&s2[..], &[6, 7]);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![1, 2, 3]);
        let _ = b.slice(1..5);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1];
        let _ = cursor.get_u32();
    }
}
