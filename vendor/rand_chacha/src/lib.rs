//! Offline vendored ChaCha-based RNG.
//!
//! Implements the real ChaCha stream cipher core (D. J. Bernstein) with 8
//! rounds, exposed through the vendored `rand` traits. Deterministic for a
//! given seed; the value stream is *not* guaranteed to match the upstream
//! `rand_chacha` crate bit-for-bit (the workspace only requires internal
//! determinism).

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, buffered one 16-word block at a time.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input: constants, 8 key words, block counter, 3 nonce words.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means exhausted.
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter across words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(
            same == 0,
            "distinct seeds produced {same} collisions in 64 draws"
        );
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let x = rng.gen_range(0..10usize);
        assert!(x < 10);
        let _: f64 = rng.gen();
    }
}
