//! Observability must be a pure observer: an engine with the recorder
//! enabled and an identically configured engine with it disabled must
//! produce byte-identical transcriptions on any input, while only the
//! enabled engine accumulates counters.

use proptest::prelude::*;
use speakql_core::{CounterId, SpanId, SpeakQl, SpeakQlConfig};
use speakql_db::{Column, Database, Table, TableSchema, Value, ValueType};
use std::sync::OnceLock;

/// A pair of engines differing only in the `observe` flag.
fn engines() -> &'static (SpeakQl, SpeakQl) {
    static E: OnceLock<(SpeakQl, SpeakQl)> = OnceLock::new();
    E.get_or_init(|| {
        let mut db = Database::new("obs");
        let mut t = Table::new(TableSchema::new(
            "Employees",
            vec![
                Column::new("Name", ValueType::Text),
                Column::new("Salary", ValueType::Int),
            ],
        ));
        t.push_row(vec![Value::Text("jon".into()), Value::Int(70_000)]);
        t.push_row(vec![Value::Text("ana".into()), Value::Int(82_000)]);
        db.add_table(t);
        let cfg = SpeakQlConfig {
            generator: speakql_grammar::GeneratorConfig {
                max_structures: Some(3_000),
                ..speakql_grammar::GeneratorConfig::small()
            },
            ..SpeakQlConfig::small()
        };
        let plain = SpeakQl::new(&db, cfg.clone().with_observability(false));
        let observed = SpeakQl::new(&db, cfg.with_observability(true));
        (plain, observed)
    })
}

fn arb_transcript() -> impl Strategy<Value = String> {
    let word = prop_oneof![
        Just("select".to_string()),
        Just("from".to_string()),
        Just("where".to_string()),
        Just("equals".to_string()),
        Just("salary".to_string()),
        Just("employees".to_string()),
        Just("name".to_string()),
        Just("jon".to_string()),
        Just("comma".to_string()),
        Just("open".to_string()),
        Just("parenthesis".to_string()),
        "[a-z]{1,8}",
        "[0-9]{1,5}",
    ];
    prop::collection::vec(word, 0..18).prop_map(|ws| ws.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Recorder-enabled and recorder-disabled engines are observationally
    /// equivalent: same candidates, same SQL, same distances, same literals,
    /// in the same order.
    #[test]
    fn observability_never_changes_output(t in arb_transcript()) {
        let (plain, observed) = engines();
        match (plain.transcribe(&t), observed.transcribe(&t)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.best_sql(), b.best_sql(), "best_sql diverged on '{}'", &t);
                prop_assert_eq!(a.candidates.len(), b.candidates.len());
                for (ca, cb) in a.candidates.iter().zip(&b.candidates) {
                    prop_assert_eq!(&ca.sql, &cb.sql);
                    prop_assert_eq!(ca.distance, cb.distance);
                    prop_assert_eq!(&ca.literals, &cb.literals);
                }
            }
            // Error classification must be observation-independent too.
            (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb, "error class diverged on '{}'", &t),
            (a, b) => prop_assert!(false, "ok/err diverged on '{}': {:?} vs {:?}", &t, a, b),
        }
    }
}

#[test]
fn only_the_enabled_engine_accumulates_metrics() {
    let (plain, observed) = engines();
    assert!(plain.transcribe("select salary from employees").is_ok());
    assert!(observed.transcribe("select salary from employees").is_ok());

    let disabled = plain.report();
    for c in &disabled.counters {
        assert_eq!(c.total, 0, "disabled recorder counted {}", c.name);
    }
    for s in &disabled.stages {
        assert_eq!(s.count, 0, "disabled recorder timed {}", s.name);
    }

    let enabled = observed.report();
    assert!(enabled.counter(CounterId::Transcriptions) >= 1);
    assert!(enabled.counter(CounterId::SearchNodesVisited) > 0);
    assert!(enabled.stage(SpanId::Search).unwrap().count >= 1);
}
