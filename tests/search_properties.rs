//! Integration-level properties of the search engine on *real* noisy
//! transcripts (not synthetic token soup): exactness of BDB, top-k ordering,
//! and the advertised behaviour of the approximate modes.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use speakql_asr::{AsrEngine, AsrProfile, Vocabulary};
use speakql_data::{employees_db, generate_cases};
use speakql_editdist::Weights;
use speakql_grammar::{process_transcript_text, GeneratorConfig};
use speakql_index::{SearchConfig, StructureIndex};

fn fixture() -> &'static (StructureIndex, Vec<String>) {
    static F: std::sync::OnceLock<(StructureIndex, Vec<String>)> = std::sync::OnceLock::new();
    F.get_or_init(|| {
        let cfg = GeneratorConfig::small();
        let index = StructureIndex::from_grammar(&cfg, Weights::PAPER);
        let db = employees_db();
        let cases = generate_cases(&db, &cfg, 40, 0xF00D);
        let asr = AsrEngine::new(AsrProfile::acs_trained(), Vocabulary::empty());
        let transcripts = cases
            .iter()
            .map(|c| {
                let mut rng = ChaCha8Rng::seed_from_u64(c.id as u64);
                asr.transcribe_sql(&c.sql, &mut rng)
            })
            .collect();
        (index, transcripts)
    })
}

#[test]
fn default_search_is_exact_on_noisy_transcripts() {
    let (index, transcripts) = fixture();
    for t in transcripts {
        let p = process_transcript_text(t);
        for k in [1usize, 5] {
            let cfg = SearchConfig {
                k,
                ..SearchConfig::default()
            };
            assert_eq!(
                index.search(&p.masked, &cfg),
                index.scan(&p.masked, k),
                "trie search must equal brute force on {t}"
            );
        }
    }
}

#[test]
fn inv_returns_subset_quality() {
    // INV restricts the candidate set: its best hit can never beat the
    // exact search, and when the exact best carries a rare keyword INV
    // finds the same structure.
    let (index, transcripts) = fixture();
    for t in transcripts {
        let p = process_transcript_text(t);
        let exact = index.search(&p.masked, &SearchConfig::default());
        let inv = index.search(
            &p.masked,
            &SearchConfig {
                inv: true,
                ..Default::default()
            },
        );
        if let (Some(e), Some(i)) = (exact.first(), inv.first()) {
            assert!(i.distance >= e.distance, "INV cannot beat exact search");
        }
    }
}

#[test]
fn dap_reduces_total_nodes_visited() {
    // DAP's prime prepass advances each prime child's column once *extra*
    // to pick the best branch, so on a transcript where the banded descend
    // bound has already pruned the non-chosen primes' subtrees, DAP can
    // visit a handful more nodes than the default walk. The heuristic's
    // contract is aggregate work reduction on real noisy transcripts, so
    // that is what we assert — strictly, and by a wide margin (the fixture
    // currently shows ~3x).
    let (index, transcripts) = fixture();
    let (mut default_total, mut dap_total) = (0u64, 0u64);
    for t in transcripts {
        let p = process_transcript_text(t);
        let (_, d_stats) = index.search_with_stats(&p.masked, &SearchConfig::default());
        let (_, dap_stats) = index.search_with_stats(
            &p.masked,
            &SearchConfig {
                dap: true,
                ..Default::default()
            },
        );
        default_total += d_stats.nodes_visited;
        dap_total += dap_stats.nodes_visited;
    }
    assert!(
        dap_total * 2 < default_total,
        "DAP must at least halve total nodes visited: dap={dap_total} default={default_total}"
    );
}

#[test]
fn bdb_prunes_but_preserves_results_at_scale() {
    let (index, transcripts) = fixture();
    let mut total_pruned = 0u64;
    for t in transcripts {
        let p = process_transcript_text(t);
        let (with, s1) = index.search_with_stats(&p.masked, &SearchConfig::default());
        let (without, _) = index.search_with_stats(
            &p.masked,
            &SearchConfig {
                bdb: false,
                ..Default::default()
            },
        );
        assert_eq!(with, without);
        total_pruned += s1.tries_pruned as u64;
    }
    assert!(
        total_pruned > 0,
        "BDB never pruned anything across 40 real transcripts"
    );
}
