//! End-to-end integration tests spanning every crate: dataset generation →
//! verbalization → noisy ASR → SpeakQL correction → metrics → execution.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use speakql_asr::{AsrEngine, AsrProfile};
use speakql_bench::{run_split, Context, Scale};
use speakql_core::{SpeakQl, SpeakQlConfig};
use speakql_data::{employees_db, generate_cases, training_vocabulary, STUDY_QUERIES};
use speakql_grammar::GeneratorConfig;
use speakql_metrics::{mean_report, ted};

fn context() -> &'static Context {
    static CTX: std::sync::OnceLock<Context> = std::sync::OnceLock::new();
    CTX.get_or_init(|| Context::new(Scale::Small))
}

#[test]
fn speakql_improves_over_raw_asr_on_every_word_metric() {
    let ctx = context();
    let runs = run_split(
        &ctx.asr_trained,
        &ctx.employees_engine,
        "it-e2e",
        &ctx.dataset.employees_test[..20.min(ctx.dataset.employees_test.len())],
    );
    let asr = mean_report(&runs.iter().map(|r| r.asr_report).collect::<Vec<_>>());
    let sq = mean_report(&runs.iter().map(|r| r.top1_report).collect::<Vec<_>>());
    assert!(sq.wrr > asr.wrr, "WRR {:.3} !> {:.3}", sq.wrr, asr.wrr);
    assert!(sq.wpr > asr.wpr, "WPR {:.3} !> {:.3}", sq.wpr, asr.wpr);
    assert!(sq.lrr > asr.lrr, "LRR {:.3} !> {:.3}", sq.lrr, asr.lrr);
    // Keywords and splchars end up near-perfect after correction (§6.3).
    assert!(sq.kpr > 0.9, "KPR {:.3}", sq.kpr);
    assert!(sq.spr > 0.9, "SPR {:.3}", sq.spr);
}

#[test]
fn top5_never_worse_than_top1() {
    let ctx = context();
    let runs = run_split(
        &ctx.asr_trained,
        &ctx.employees_engine,
        "it-top5",
        &ctx.dataset.employees_test[..15.min(ctx.dataset.employees_test.len())],
    );
    for r in &runs {
        assert!(r.top5_report.wrr >= r.top1_report.wrr);
        assert!(r.top5_ted <= r.top1_ted);
    }
}

#[test]
fn yelp_literal_recall_below_employees() {
    // The unseen-schema effect (§6.3): the ASR vocabulary was trained on
    // Employees, so Yelp literals fare worse.
    let ctx = context();
    let emp = run_split(
        &ctx.asr_trained,
        &ctx.employees_engine,
        "it-emp",
        &ctx.dataset.employees_test[..20.min(ctx.dataset.employees_test.len())],
    );
    let yelp = run_split(
        &ctx.asr_trained,
        &ctx.yelp_engine,
        "it-yelp",
        &ctx.dataset.yelp_test[..20.min(ctx.dataset.yelp_test.len())],
    );
    let emp_lrr = mean_report(&emp.iter().map(|r| r.top1_report).collect::<Vec<_>>()).lrr;
    let yelp_lrr = mean_report(&yelp.iter().map(|r| r.top1_report).collect::<Vec<_>>()).lrr;
    assert!(
        emp_lrr > yelp_lrr,
        "Employees LRR {emp_lrr:.3} must exceed Yelp LRR {yelp_lrr:.3}"
    );
}

#[test]
fn perfect_transcripts_of_study_queries_roundtrip_mostly() {
    // With a noise-free channel, SpeakQL should reproduce in-space study
    // queries exactly; out-of-space structures (deep complex queries at
    // Small scale) may differ, so require a majority.
    let db = employees_db();
    let engine = SpeakQl::new(&db, SpeakQlConfig::small());
    let perfect = AsrProfile {
        name: "perfect",
        keyword_err: 0.0,
        splchar_symbol_rate: 1.0,
        splchar_err: 0.0,
        literal_word_err: 0.0,
        oov_word_err: 0.0,
        recombine_literal: 1.0,
        number_correct: 1.0,
        number_split: 0.0,
        date_correct: 1.0,
        word_drop: 0.0,
    };
    let vocab = speakql_asr::Vocabulary::from_literals(
        db.table_names()
            .into_iter()
            .chain(db.attribute_names())
            .chain(db.string_attribute_values()),
    );
    let asr = AsrEngine::new(perfect, vocab);
    let mut exact = 0;
    for q in &STUDY_QUERIES {
        let mut rng = ChaCha8Rng::seed_from_u64(q.id as u64);
        let transcript = asr.transcribe_sql(q.sql, &mut rng);
        let best = engine
            .transcribe(&transcript)
            .ok()
            .and_then(|t| t.best_sql().map(str::to_string))
            .unwrap_or_default();
        if ted(q.sql, &best) == 0 {
            exact += 1;
        }
    }
    // The six simple queries (q1-q6) have in-space structures; the complex
    // ones exceed the enumeration caps — exactly why the paper's own user
    // study needed 19-49 correction touches for complex queries.
    assert!(exact >= 5, "only {exact}/12 exact under a perfect channel");
}

#[test]
fn corrected_queries_always_execute() {
    // Whatever SpeakQL renders must be *syntactically valid* SQL of the
    // subset: parseable and executable (unknown-name errors aside).
    let ctx = context();
    let runs = run_split(
        &ctx.asr_trained,
        &ctx.employees_engine,
        "it-exec",
        &ctx.dataset.employees_test[..20.min(ctx.dataset.employees_test.len())],
    );
    for r in &runs {
        let parsed = speakql_db::parse_query(&r.top1_sql);
        assert!(
            parsed.is_ok(),
            "unparsable output: {} ({parsed:?})",
            r.top1_sql
        );
    }
}

#[test]
fn nested_pipeline_produces_two_selects() {
    let db = employees_db();
    let engine = SpeakQl::new(&db, SpeakQlConfig::small());
    let cases = speakql_data::generate_nested_cases(&db, 5, 1);
    let train = generate_cases(&db, &GeneratorConfig::small(), 20, 2);
    let asr = AsrEngine::new(AsrProfile::acs_trained(), training_vocabulary(&db, &train));
    let mut with_nesting = 0;
    for c in &cases {
        let mut rng = ChaCha8Rng::seed_from_u64(c.id as u64 + 99);
        let transcript = asr.transcribe_sql(&c.sql, &mut rng);
        let best = engine
            .transcribe(&transcript)
            .ok()
            .and_then(|t| t.best_sql().map(str::to_string))
            .unwrap_or_default();
        if best.matches("SELECT").count() == 2 {
            with_nesting += 1;
        }
    }
    assert!(
        with_nesting >= 3,
        "nesting preserved in only {with_nesting}/5"
    );
}
