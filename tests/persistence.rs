//! Persistence integration: an engine built around a saved-and-reloaded
//! structure index must behave identically to the original, the binary
//! format must round-trip arbitrary structure arenas, and corrupt input
//! must surface a [`PersistError`] rather than panic.

use proptest::prelude::*;
use speakql_core::{SpeakQl, SpeakQlConfig, SpeakQlError};
use speakql_data::employees_db;
use speakql_editdist::Weights;
use speakql_grammar::{GeneratorConfig, LitCategory, Placeholder, StructTokId, Structure};
use speakql_index::{
    from_bytes, save_to_path, to_bytes, DpKernel, PersistError, SearchConfig, StructureIndex,
};
use std::sync::Arc;

#[test]
fn reloaded_index_drives_identical_engine() {
    let cfg = GeneratorConfig {
        max_structures: Some(5_000),
        ..GeneratorConfig::small()
    };
    let index = StructureIndex::from_grammar(&cfg, Weights::PAPER);

    let dir = std::env::temp_dir().join("speakql-it-persist");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("index.sqlx");
    save_to_path(&index, &path).expect("save");

    let db = employees_db();
    let engine_cfg = SpeakQlConfig {
        generator: cfg,
        ..SpeakQlConfig::paper()
    };
    let original = SpeakQl::with_index(&db, Arc::new(index), engine_cfg.clone());
    // The restored engine goes through the engine-level persisted-index
    // entry point, i.e. the zero-copy validate-then-borrow load path.
    let restored = SpeakQl::with_persisted_index(&db, &path, engine_cfg)
        .expect("load persisted index into engine");
    std::fs::remove_file(&path).ok();

    for transcript in [
        "select salary from salaries",
        "select sales from employers wear first name equals jon",
        "select sum open parenthesis salary close parenthesis from celeries where from date equals january twentieth nineteen ninety three",
        "select star from titles where title equals engineer limit ten",
    ] {
        let a = original.transcribe(transcript).expect("transcribe original");
        let b = restored.transcribe(transcript).expect("transcribe restored");
        assert_eq!(a.best_sql(), b.best_sql(), "mismatch on: {transcript}");
        assert_eq!(a.candidates.len(), b.candidates.len());
        for (ca, cb) in a.candidates.iter().zip(&b.candidates) {
            assert_eq!(ca.sql, cb.sql);
            assert_eq!(ca.distance, cb.distance);
        }
    }
}

#[test]
fn persisted_file_size_is_compact() {
    let cfg = GeneratorConfig {
        max_structures: Some(5_000),
        ..GeneratorConfig::small()
    };
    let index = StructureIndex::from_grammar(&cfg, Weights::PAPER);
    let bytes = speakql_index::to_bytes(&index).expect("serialize");
    // The v2 image carries the trie node planes (13 bytes/node) alongside
    // the ~20-30 bytes/structure arena, trading bytes at rest for a
    // zero-copy load; certainly under 128 per structure.
    assert!(
        bytes.len() < 5_000 * 128,
        "{} bytes for 5000 structures",
        bytes.len()
    );
    // And the arena reconstructs identically.
    let reloaded = speakql_index::from_bytes(&bytes).expect("roundtrip");
    assert_eq!(reloaded.len(), index.len());
    for id in 0..index.len() as u32 {
        assert_eq!(reloaded.structure(id), index.structure(id));
    }
}

/// One random but well-formed structure: tokens over the full alphabet with
/// placeholder metadata matching the `Var` count. A pool of placeholders is
/// drawn alongside the tokens and truncated to the realized `Var` count;
/// governors stay below the `u16::MAX` sentinel the format reserves for
/// "none".
fn arb_structure() -> impl Strategy<Value = Structure> {
    let placeholder = (
        prop_oneof![
            Just(LitCategory::Table),
            Just(LitCategory::Attribute),
            Just(LitCategory::Value),
            Just(LitCategory::Number),
        ],
        prop::option::of(0u16..u16::MAX),
    )
        .prop_map(|(category, governor)| Placeholder { category, governor });
    (
        prop::collection::vec(0u8..28, 1..14),
        prop::collection::vec(placeholder, 14..15),
    )
        .prop_map(|(ids, pool)| {
            let tokens: Vec<StructTokId> = ids.into_iter().map(StructTokId).collect();
            let vars = tokens.iter().filter(|t| t.is_var()).count();
            Structure {
                tokens,
                placeholders: pool[..vars].to_vec(),
            }
        })
}

fn arb_weights() -> impl Strategy<Value = Weights> {
    (1u32..=100, 1u32..=100, 1u32..=100).prop_map(|(keyword, splchar, literal)| Weights {
        keyword,
        splchar,
        literal,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `from_bytes(to_bytes(index))` reconstructs the arena and weights of
    /// any randomly sampled index exactly.
    #[test]
    fn roundtrip_arbitrary_indexes(
        structures in prop::collection::vec(arb_structure(), 1..40),
        weights in arb_weights(),
    ) {
        // The trie index (like the grammar generator feeding it) requires
        // distinct token sequences; keep the first of each.
        let mut seen = std::collections::HashSet::new();
        let structures: Vec<Structure> = structures
            .into_iter()
            .filter(|s| seen.insert(s.tokens.clone()))
            .collect();
        let index = StructureIndex::build(structures, weights);
        let bytes = to_bytes(&index).expect("serialize");
        let restored = from_bytes(&bytes).expect("roundtrip");
        prop_assert_eq!(restored.weights(), index.weights());
        prop_assert_eq!(restored.len(), index.len());
        for id in 0..index.len() as u32 {
            prop_assert_eq!(restored.structure(id), index.structure(id));
        }
    }

    /// Corrupting any single byte of a valid image either round-trips to a
    /// well-formed index or fails with a `PersistError` — never a panic.
    #[test]
    fn single_byte_corruption_never_panics(
        structures in prop::collection::vec(arb_structure(), 1..10),
        pos_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let mut seen = std::collections::HashSet::new();
        let structures: Vec<Structure> = structures
            .into_iter()
            .filter(|s| seen.insert(s.tokens.clone()))
            .collect();
        let index = StructureIndex::build(structures, Weights::PAPER);
        let mut bytes = to_bytes(&index).expect("serialize").to_vec();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= xor;
        let _ = from_bytes(&bytes);
    }

    /// `build → to_bytes → validate-borrow → search` is byte-identical to
    /// searching the arena built in memory, across thread counts and DP
    /// kernels: same hits, same order, same distances. The borrowed planes
    /// must be indistinguishable from the owned ones under every execution
    /// schedule.
    #[test]
    fn zero_copy_roundtrip_search_is_byte_identical(
        structures in prop::collection::vec(arb_structure(), 1..40),
        masked in prop::collection::vec(0u8..28, 0..16),
        k in 1usize..6,
    ) {
        let mut seen = std::collections::HashSet::new();
        let structures: Vec<Structure> = structures
            .into_iter()
            .filter(|s| seen.insert(s.tokens.clone()))
            .collect();
        let built = StructureIndex::build(structures, Weights::PAPER);
        let bytes = to_bytes(&built).expect("serialize");
        let borrowed = speakql_index::from_shared(bytes).expect("validate-borrow");
        let masked: Vec<StructTokId> = masked.into_iter().map(StructTokId).collect();
        for kernel in [DpKernel::Scalar, DpKernel::Soa] {
            for threads in [1usize, 2, 8] {
                let cfg = SearchConfig { k, kernel, threads, ..SearchConfig::default() };
                prop_assert_eq!(
                    built.search(&masked, &cfg),
                    borrowed.search(&masked, &cfg),
                    "kernel={:?} threads={}", kernel, threads
                );
            }
        }
    }

    /// Fuzzing the header and offset-table region (the bytes that steer
    /// every downstream bounds computation) with multiple simultaneous
    /// corruptions must yield a typed error or a valid index — never a
    /// panic, even though checksums may still pass when mutations cancel.
    #[test]
    fn header_and_offset_fuzzing_never_panics(
        structures in prop::collection::vec(arb_structure(), 1..10),
        edits in prop::collection::vec((any::<u64>(), 1u8..=255), 1..8),
    ) {
        let mut seen = std::collections::HashSet::new();
        let structures: Vec<Structure> = structures
            .into_iter()
            .filter(|s| seen.insert(s.tokens.clone()))
            .collect();
        let index = StructureIndex::build(structures, Weights::PAPER);
        let mut bytes = to_bytes(&index).expect("serialize").to_vec();
        // Constrain mutations to the header + leading offset tables so the
        // fuzz concentrates where field interpretation happens.
        let window = bytes.len().min(160) as u64;
        for (seed, xor) in edits {
            bytes[(seed % window) as usize] ^= xor;
        }
        let _ = from_bytes(&bytes);
    }

    /// A syntactically plausible preamble (good magic + current version)
    /// followed by arbitrary bytes must never panic the loader.
    #[test]
    fn arbitrary_payload_after_valid_preamble_never_panics(
        payload in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let mut image = b"SQLX".to_vec();
        image.extend_from_slice(&2u16.to_be_bytes());
        image.extend_from_slice(&payload);
        let _ = from_bytes(&image);
    }
}

#[test]
fn engine_surfaces_typed_index_load_errors() {
    let dir = std::env::temp_dir().join("speakql-it-persist");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("not-an-index.sqlx");
    std::fs::write(&path, b"definitely not an index").unwrap();
    let Err(err) = SpeakQl::with_persisted_index(&employees_db(), &path, SpeakQlConfig::small())
    else {
        panic!("garbage must not build an engine");
    };
    std::fs::remove_file(&path).ok();
    match &err {
        SpeakQlError::IndexLoad { class, message } => {
            assert_eq!(*class, "bad_magic");
            assert!(message.contains("not a SpeakQL index file"), "{message}");
        }
        other => panic!("expected IndexLoad, got {other:?}"),
    }
    assert_eq!(err.class(), "index_load");

    let Err(missing) = SpeakQl::with_persisted_index(
        &employees_db(),
        dir.join("missing.sqlx"),
        SpeakQlConfig::small(),
    ) else {
        panic!("missing file must not build an engine");
    };
    match missing {
        SpeakQlError::IndexLoad { class, .. } => assert_eq!(class, "io"),
        other => panic!("expected IndexLoad, got {other:?}"),
    }
}

#[test]
fn corrupted_header_reports_each_error_path() {
    let index = StructureIndex::build(
        vec![Structure {
            tokens: vec![StructTokId(1), StructTokId(0)],
            placeholders: vec![Placeholder::table()],
        }],
        Weights::PAPER,
    );
    let good = to_bytes(&index).expect("serialize").to_vec();

    // Magic torn up -> BadMagic.
    let mut bad_magic = good.clone();
    bad_magic[0] = b'X';
    assert!(matches!(
        from_bytes(&bad_magic),
        Err(PersistError::BadMagic)
    ));

    // Version bumped -> BadVersion carrying the offending version.
    let mut bad_version = good.clone();
    bad_version[4] = 0x7f;
    match from_bytes(&bad_version) {
        Err(PersistError::BadVersion(v)) => assert_eq!(v, 0x7f00 + u16::from(good[5])),
        other => panic!("expected BadVersion, got {other:?}"),
    }

    // Header cut off mid-weights -> Corrupt("truncated header").
    match from_bytes(&good[..10]) {
        Err(PersistError::Corrupt(what)) => assert!(what.contains("truncated"), "{what}"),
        other => panic!("expected Corrupt, got {other:?}"),
    }

    // Structure count claims more than the payload holds -> Corrupt.
    let mut overcount = good.clone();
    overcount[18] = 0xff; // most-significant byte of the big-endian u32 count
    assert!(matches!(
        from_bytes(&overcount),
        Err(PersistError::Corrupt(_))
    ));

    // Errors render as readable messages (Display path).
    assert_eq!(
        PersistError::BadMagic.to_string(),
        "not a SpeakQL index file"
    );
    assert!(PersistError::BadVersion(9).to_string().contains('9'));
    assert!(PersistError::Corrupt("x").to_string().contains('x'));
}
