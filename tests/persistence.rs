//! Persistence integration: an engine built around a saved-and-reloaded
//! structure index must behave identically to the original, the binary
//! format must round-trip arbitrary structure arenas, and corrupt input
//! must surface a [`PersistError`] rather than panic.

use proptest::prelude::*;
use speakql_core::{SpeakQl, SpeakQlConfig};
use speakql_data::employees_db;
use speakql_editdist::Weights;
use speakql_grammar::{GeneratorConfig, LitCategory, Placeholder, StructTokId, Structure};
use speakql_index::{
    from_bytes, load_from_path, save_to_path, to_bytes, PersistError, StructureIndex,
};
use std::sync::Arc;

#[test]
fn reloaded_index_drives_identical_engine() {
    let cfg = GeneratorConfig {
        max_structures: Some(5_000),
        ..GeneratorConfig::small()
    };
    let index = StructureIndex::from_grammar(&cfg, Weights::PAPER);

    let dir = std::env::temp_dir().join("speakql-it-persist");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("index.sqlx");
    save_to_path(&index, &path).expect("save");
    let reloaded = load_from_path(&path).expect("load");
    std::fs::remove_file(&path).ok();

    let db = employees_db();
    let engine_cfg = SpeakQlConfig {
        generator: cfg,
        ..SpeakQlConfig::paper()
    };
    let original = SpeakQl::with_index(&db, Arc::new(index), engine_cfg.clone());
    let restored = SpeakQl::with_index(&db, Arc::new(reloaded), engine_cfg);

    for transcript in [
        "select salary from salaries",
        "select sales from employers wear first name equals jon",
        "select sum open parenthesis salary close parenthesis from celeries where from date equals january twentieth nineteen ninety three",
        "select star from titles where title equals engineer limit ten",
    ] {
        let a = original.transcribe(transcript).expect("transcribe original");
        let b = restored.transcribe(transcript).expect("transcribe restored");
        assert_eq!(a.best_sql(), b.best_sql(), "mismatch on: {transcript}");
        assert_eq!(a.candidates.len(), b.candidates.len());
        for (ca, cb) in a.candidates.iter().zip(&b.candidates) {
            assert_eq!(ca.sql, cb.sql);
            assert_eq!(ca.distance, cb.distance);
        }
    }
}

#[test]
fn persisted_file_size_is_compact() {
    let cfg = GeneratorConfig {
        max_structures: Some(5_000),
        ..GeneratorConfig::small()
    };
    let index = StructureIndex::from_grammar(&cfg, Weights::PAPER);
    let bytes = speakql_index::to_bytes(&index).expect("serialize");
    // Roughly 20-30 bytes per structure; certainly under 64.
    assert!(
        bytes.len() < 5_000 * 64,
        "{} bytes for 5000 structures",
        bytes.len()
    );
    // And the arena reconstructs identically.
    let reloaded = speakql_index::from_bytes(&bytes).expect("roundtrip");
    assert_eq!(reloaded.structures(), index.structures());
}

/// One random but well-formed structure: tokens over the full alphabet with
/// placeholder metadata matching the `Var` count. A pool of placeholders is
/// drawn alongside the tokens and truncated to the realized `Var` count;
/// governors stay below the `u16::MAX` sentinel the format reserves for
/// "none".
fn arb_structure() -> impl Strategy<Value = Structure> {
    let placeholder = (
        prop_oneof![
            Just(LitCategory::Table),
            Just(LitCategory::Attribute),
            Just(LitCategory::Value),
            Just(LitCategory::Number),
        ],
        prop::option::of(0u16..u16::MAX),
    )
        .prop_map(|(category, governor)| Placeholder { category, governor });
    (
        prop::collection::vec(0u8..28, 1..14),
        prop::collection::vec(placeholder, 14..15),
    )
        .prop_map(|(ids, pool)| {
            let tokens: Vec<StructTokId> = ids.into_iter().map(StructTokId).collect();
            let vars = tokens.iter().filter(|t| t.is_var()).count();
            Structure {
                tokens,
                placeholders: pool[..vars].to_vec(),
            }
        })
}

fn arb_weights() -> impl Strategy<Value = Weights> {
    (1u32..=100, 1u32..=100, 1u32..=100).prop_map(|(keyword, splchar, literal)| Weights {
        keyword,
        splchar,
        literal,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `from_bytes(to_bytes(index))` reconstructs the arena and weights of
    /// any randomly sampled index exactly.
    #[test]
    fn roundtrip_arbitrary_indexes(
        structures in prop::collection::vec(arb_structure(), 1..40),
        weights in arb_weights(),
    ) {
        // The trie index (like the grammar generator feeding it) requires
        // distinct token sequences; keep the first of each.
        let mut seen = std::collections::HashSet::new();
        let structures: Vec<Structure> = structures
            .into_iter()
            .filter(|s| seen.insert(s.tokens.clone()))
            .collect();
        let index = StructureIndex::build(structures, weights);
        let bytes = to_bytes(&index).expect("serialize");
        let restored = from_bytes(&bytes).expect("roundtrip");
        prop_assert_eq!(restored.structures(), index.structures());
        prop_assert_eq!(restored.weights(), index.weights());
        prop_assert_eq!(restored.len(), index.len());
    }

    /// Corrupting any single byte of a valid image either round-trips to a
    /// well-formed index or fails with a `PersistError` — never a panic.
    #[test]
    fn single_byte_corruption_never_panics(
        structures in prop::collection::vec(arb_structure(), 1..10),
        pos_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let index = StructureIndex::build(structures, Weights::PAPER);
        let mut bytes = to_bytes(&index).expect("serialize").to_vec();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= xor;
        let _ = from_bytes(&bytes);
    }
}

#[test]
fn corrupted_header_reports_each_error_path() {
    let index = StructureIndex::build(
        vec![Structure {
            tokens: vec![StructTokId(1), StructTokId(0)],
            placeholders: vec![Placeholder::table()],
        }],
        Weights::PAPER,
    );
    let good = to_bytes(&index).expect("serialize").to_vec();

    // Magic torn up -> BadMagic.
    let mut bad_magic = good.clone();
    bad_magic[0] = b'X';
    assert!(matches!(
        from_bytes(&bad_magic),
        Err(PersistError::BadMagic)
    ));

    // Version bumped -> BadVersion carrying the offending version.
    let mut bad_version = good.clone();
    bad_version[4] = 0x7f;
    match from_bytes(&bad_version) {
        Err(PersistError::BadVersion(v)) => assert_eq!(v, 0x7f00 + u16::from(good[5])),
        other => panic!("expected BadVersion, got {other:?}"),
    }

    // Header cut off mid-weights -> Corrupt("truncated header").
    match from_bytes(&good[..10]) {
        Err(PersistError::Corrupt(what)) => assert!(what.contains("truncated"), "{what}"),
        other => panic!("expected Corrupt, got {other:?}"),
    }

    // Structure count claims more than the payload holds -> Corrupt.
    let mut overcount = good.clone();
    overcount[18] = 0xff; // most-significant byte of the big-endian u32 count
    assert!(matches!(
        from_bytes(&overcount),
        Err(PersistError::Corrupt(_))
    ));

    // Errors render as readable messages (Display path).
    assert_eq!(
        PersistError::BadMagic.to_string(),
        "not a SpeakQL index file"
    );
    assert!(PersistError::BadVersion(9).to_string().contains('9'));
    assert!(PersistError::Corrupt("x").to_string().contains('x'));
}
