//! Persistence integration: an engine built around a saved-and-reloaded
//! structure index must behave identically to the original.

use speakql_core::{SpeakQl, SpeakQlConfig};
use speakql_data::employees_db;
use speakql_editdist::Weights;
use speakql_grammar::GeneratorConfig;
use speakql_index::{load_from_path, save_to_path, StructureIndex};
use std::sync::Arc;

#[test]
fn reloaded_index_drives_identical_engine() {
    let cfg = GeneratorConfig {
        max_structures: Some(5_000),
        ..GeneratorConfig::small()
    };
    let index = StructureIndex::from_grammar(&cfg, Weights::PAPER);

    let dir = std::env::temp_dir().join("speakql-it-persist");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("index.sqlx");
    save_to_path(&index, &path).expect("save");
    let reloaded = load_from_path(&path).expect("load");
    std::fs::remove_file(&path).ok();

    let db = employees_db();
    let engine_cfg = SpeakQlConfig {
        generator: cfg,
        ..SpeakQlConfig::paper()
    };
    let original = SpeakQl::with_index(&db, Arc::new(index), engine_cfg.clone());
    let restored = SpeakQl::with_index(&db, Arc::new(reloaded), engine_cfg);

    for transcript in [
        "select salary from salaries",
        "select sales from employers wear first name equals jon",
        "select sum open parenthesis salary close parenthesis from celeries where from date equals january twentieth nineteen ninety three",
        "select star from titles where title equals engineer limit ten",
    ] {
        let a = original.transcribe(transcript);
        let b = restored.transcribe(transcript);
        assert_eq!(a.best_sql(), b.best_sql(), "mismatch on: {transcript}");
        assert_eq!(a.candidates.len(), b.candidates.len());
        for (ca, cb) in a.candidates.iter().zip(&b.candidates) {
            assert_eq!(ca.sql, cb.sql);
            assert_eq!(ca.distance, cb.distance);
        }
    }
}

#[test]
fn persisted_file_size_is_compact() {
    let cfg = GeneratorConfig {
        max_structures: Some(5_000),
        ..GeneratorConfig::small()
    };
    let index = StructureIndex::from_grammar(&cfg, Weights::PAPER);
    let bytes = speakql_index::to_bytes(&index);
    // Roughly 20-30 bytes per structure; certainly under 64.
    assert!(
        bytes.len() < 5_000 * 64,
        "{} bytes for 5000 structures",
        bytes.len()
    );
    // And the arena reconstructs identically.
    let reloaded = speakql_index::from_bytes(&bytes).expect("roundtrip");
    assert_eq!(reloaded.structures(), index.structures());
}
