//! Whole-pipeline determinism: every randomized component is seeded, so two
//! identical runs must agree bit-for-bit. This is what makes the experiment
//! suite reproducible.

use speakql_bench::{run_split, Context, Scale};
use speakql_data::SpokenSqlDataset;
use speakql_grammar::{generate_structures, GeneratorConfig};

#[test]
fn structure_generation_is_deterministic() {
    let cfg = GeneratorConfig::small();
    assert_eq!(generate_structures(&cfg), generate_structures(&cfg));
}

#[test]
fn dataset_is_deterministic() {
    let a = SpokenSqlDataset::with_sizes(&GeneratorConfig::small(), 10, 5, 5);
    let b = SpokenSqlDataset::with_sizes(&GeneratorConfig::small(), 10, 5, 5);
    assert_eq!(a.train, b.train);
    assert_eq!(a.employees_test, b.employees_test);
    assert_eq!(a.yelp_test, b.yelp_test);
}

#[test]
fn full_runs_are_deterministic() {
    let ctx = Context::new(Scale::Small);
    let cases = &ctx.dataset.employees_test[..8.min(ctx.dataset.employees_test.len())];
    let a = run_split(&ctx.asr_trained, &ctx.employees_engine, "det", cases);
    let b = run_split(&ctx.asr_trained, &ctx.employees_engine, "det", cases);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.transcript, y.transcript);
        assert_eq!(x.top1_sql, y.top1_sql);
        assert_eq!(x.top1_ted, y.top1_ted);
        assert_eq!(x.asr_report, y.asr_report);
    }
}

#[test]
fn parallel_split_matches_sequential() {
    let ctx = Context::new(Scale::Small);
    let cases = &ctx.dataset.employees_test[..12.min(ctx.dataset.employees_test.len())];
    let parallel = run_split(&ctx.asr_trained, &ctx.employees_engine, "par", cases);
    let sequential: Vec<_> = cases
        .iter()
        .map(|c| speakql_bench::run_case(&ctx.asr_trained, &ctx.employees_engine, "par", c))
        .collect();
    assert_eq!(parallel.len(), sequential.len());
    for (p, s) in parallel.iter().zip(&sequential) {
        assert_eq!(p.transcript, s.transcript);
        assert_eq!(p.top1_sql, s.top1_sql);
        assert_eq!(p.top5_ted, s.top5_ted);
    }
}
